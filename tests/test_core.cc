// Tests for the measurement framework: statistics, tables, the Table 1 RTT
// harness, and the §4.3 display-latency probe.
#include <gtest/gtest.h>

#include <sstream>

#include "core/display_latency.h"
#include "core/rtt_matrix.h"
#include "core/stats.h"
#include "core/table.h"

namespace vtp::core {
namespace {

// --- statistics ----------------------------------------------------------------

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const Summary s = Summarize(values);
  EXPECT_EQ(s.n, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_NEAR(s.stddev, 2.872, 0.001);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 10);
  EXPECT_DOUBLE_EQ(s.p50, 5.5);
  EXPECT_NEAR(s.p25, 3.25, 1e-9);
  EXPECT_NEAR(s.p95, 9.55, 1e-9);
}

TEST(Stats, EdgeCases) {
  EXPECT_EQ(Summarize({}).n, 0u);
  const Summary one = Summarize(std::vector<double>{42});
  EXPECT_DOUBLE_EQ(one.mean, 42);
  EXPECT_DOUBLE_EQ(one.p5, 42);
  EXPECT_DOUBLE_EQ(one.p95, 42);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> sorted = {0, 10};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0), 0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 50), 5);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 100), 10);
}

TEST(Stats, MeanPlusMinusFormat) {
  Summary s;
  s.mean = 107.4321;
  s.stddev = 14.111;
  EXPECT_EQ(MeanPlusMinus(s, 1), "107.4±14.1");
}

// --- table ---------------------------------------------------------------------

TEST(Table, AlignsColumnsAndSeparatesHeader) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "2.5"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Header line is as wide as the widest row.
  std::istringstream is(out);
  std::string header, sep, row1;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  EXPECT_GE(sep.size(), row1.size() - 2);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.0, 0), "3");
}

// --- RTT matrix (Table 1 harness) --------------------------------------------------

TEST(RttMatrix, NearServersAreFasterAndRegionsResolve) {
  RttProbeSpec spec;
  spec.clients = {{"W", "SanFrancisco"}, {"M", "Dallas"}, {"E", "NewYork"}};
  spec.servers = {{"west", "SanJose"}, {"east", "Ashburn"}};
  spec.pings_per_pair = 5;
  const RttMatrix result = MeasureRttMatrix(spec);

  ASSERT_EQ(result.rtt_ms.size(), 3u);
  ASSERT_EQ(result.rtt_ms[0].size(), 2u);

  const double w_to_west = result.rtt_ms[0][0].mean;
  const double w_to_east = result.rtt_ms[0][1].mean;
  const double e_to_west = result.rtt_ms[2][0].mean;
  const double e_to_east = result.rtt_ms[2][1].mean;

  // Table 1's structure: same-region single-digit-to-teens ms, cross-country
  // ~70-85 ms.
  EXPECT_LT(w_to_west, 15);
  EXPECT_LT(e_to_east, 15);
  EXPECT_GT(w_to_east, 55);
  EXPECT_GT(e_to_west, 55);
  EXPECT_LT(w_to_east, 95);

  // The middle client sits between the extremes.
  const double m_to_west = result.rtt_ms[1][0].mean;
  EXPECT_GT(m_to_west, w_to_west);
  EXPECT_LT(m_to_west, e_to_west);

  // Geolocation identifies the regions (§4.1 methodology).
  EXPECT_EQ(result.server_regions[0], net::Region::kWestUs);
  EXPECT_EQ(result.server_regions[1], net::Region::kEastUs);
  EXPECT_EQ(result.client_regions[1], net::Region::kMiddleUs);

  // Low dispersion, like the paper's <7 ms stddev.
  for (const auto& row : result.rtt_ms) {
    for (const Summary& s : row) EXPECT_LT(s.stddev, 7.0);
  }
}

// --- display latency (§4.3 probe) -----------------------------------------------------

class DisplayLatencySweep : public ::testing::TestWithParam<int> {};

TEST_P(DisplayLatencySweep, LocalReconstructionIsDelayInvariant) {
  DisplayLatencyConfig config;
  config.mode = DeliveryMode::kLocalReconstruction;
  config.injected_delay = net::Millis(GetParam());
  const DisplayLatencyResult r = MeasureDisplayLatency(config);
  // §4.3: the difference stays under 16 ms regardless of injected delay.
  EXPECT_LT(r.difference_ms, 16.0);
  EXPECT_LE(r.real_world_ms, 12.0);
}

INSTANTIATE_TEST_SUITE_P(Delays, DisplayLatencySweep, ::testing::Values(0, 100, 500, 1000));

TEST(DisplayLatency, RemotePrerenderingTracksInjectedDelay) {
  DisplayLatencyConfig config;
  config.mode = DeliveryMode::kRemotePrerendered;

  config.injected_delay = 0;
  const double base_diff = MeasureDisplayLatency(config).difference_ms;
  // Even uninjected, the RTT (~65-80 ms SF<->NYC) shows up.
  EXPECT_GT(base_diff, 40.0);

  config.injected_delay = net::Millis(500);
  const double delayed_diff = MeasureDisplayLatency(config).difference_ms;
  // Two one-way injections of 500 ms ~ +1,000 ms on the request/response.
  EXPECT_NEAR(delayed_diff - base_diff, 1000.0, 60.0);
}

}  // namespace
}  // namespace vtp::core
