// Tests for the sharded conservative-lookahead simulation core: the
// determinism contract (bit-identical merged snapshots for any shard count,
// and the windowed engine pinned against the plain single-threaded
// Simulator), per-flow RNG stream invariance, topology partitioning rules
// (zero-delay edges must never cross shards), and exactly-once fault
// injection on boundary links.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "netsim/random.h"
#include "netsim/shard.h"
#include "vca/fleet.h"

namespace vtp {
namespace {

using net::FabricEdge;
using net::FabricTopology;
using net::LinkConfig;
using vca::FleetConfig;
using vca::FleetResult;
using vca::FleetSim;

FleetConfig SmallFleet() {
  FleetConfig cfg;
  cfg.seed = 11;
  cfg.target_sessions = 48;
  cfg.duration = net::Seconds(2);
  cfg.mean_session_s = 8;
  cfg.diurnal_period_s = 2;
  return cfg;
}

/// The per-metro load weights FleetSim::Run derives from its schedule (two
/// endpoints per session), reproduced so tests can inspect the partition the
/// run will use.
std::vector<double> LoadWeights(const FleetSim& fleet) {
  std::vector<double> weights(fleet.topology().metro_count(), 0.0);
  for (const vca::SessionSpec& sp : fleet.schedule()) {
    weights[sp.metro[0]] += 1.0;
    weights[sp.metro[1]] += 1.0;
  }
  return weights;
}

// --- determinism across shard counts -----------------------------------------

TEST(FleetDeterminism, MergedDigestIsBitIdenticalAcrossShardCounts) {
  std::vector<FleetResult> results;
  for (int shards : {1, 2, 4}) {
    FleetConfig cfg = SmallFleet();
    cfg.shards = shards;
    results.push_back(FleetSim(cfg).Run());
  }
  ASSERT_GT(results[0].frames_delivered, 1000u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].digest, results[0].digest) << "shards=" << results[i].shards;
    EXPECT_EQ(results[i].merged.ToJson(), results[0].merged.ToJson());
    // Work conservation: the same packets make the same hops, only the
    // thread that executes them changes.
    EXPECT_EQ(results[i].hops, results[0].hops);
  }
  // The sharded runs really did cross shard boundaries.
  EXPECT_EQ(results[0].handoffs, 0u);
  EXPECT_GT(results[2].handoffs, 0u);
}

TEST(FleetDeterminism, WindowedEngineMatchesDirectSingleThreadedReference) {
  FleetConfig cfg = SmallFleet();
  cfg.shards = 1;
  const FleetResult direct = FleetSim(cfg).RunDirect();
  const FleetResult windowed = FleetSim(cfg).Run();
  ASSERT_GT(direct.frames_delivered, 0u);
  EXPECT_EQ(direct.digest, windowed.digest);
  EXPECT_EQ(direct.merged.ToJson(), windowed.merged.ToJson());
  // Same model, same events — the window loop adds no simulation work.
  EXPECT_EQ(direct.events, windowed.events);
}

// --- per-flow RNG streams ----------------------------------------------------

TEST(FleetDeterminism, ProbeSessionDrawsAreShardCountInvariant) {
  std::vector<std::vector<double>> draws;
  for (int shards : {1, 2, 4}) {
    FleetConfig cfg = SmallFleet();
    cfg.shards = shards;
    cfg.probe_session = 5;
    draws.push_back(FleetSim(cfg).Run().probe_draws);
  }
  // Phase draw + one size draw per frame, for both participants.
  ASSERT_GT(draws[0].size(), 20u);
  EXPECT_EQ(draws[0], draws[1]);
  EXPECT_EQ(draws[0], draws[2]);
}

TEST(DeriveSeed, SeparatesDomainsAndStreams) {
  const std::uint64_t a = net::DeriveSeed(1, net::RngDomain::kSessionTraffic, 0);
  EXPECT_EQ(a, net::DeriveSeed(1, net::RngDomain::kSessionTraffic, 0));  // stable
  EXPECT_NE(a, net::DeriveSeed(1, net::RngDomain::kSessionTraffic, 1));
  EXPECT_NE(a, net::DeriveSeed(1, net::RngDomain::kLinkFaults, 0));
  EXPECT_NE(a, net::DeriveSeed(2, net::RngDomain::kSessionTraffic, 0));
}

// --- partitioning rules ------------------------------------------------------

FabricTopology ChainWithZeroDelayBridge() {
  // 0 --1ms-- 1 --0ms-- 2 --1ms-- 3 : metros 1 and 2 are "the same site".
  LinkConfig ms1;
  ms1.prop_delay = net::Millis(1);
  LinkConfig zero;
  zero.prop_delay = 0;
  return FabricTopology(4, {{0, 1, ms1}, {1, 2, zero}, {2, 3, ms1}});
}

TEST(FabricTopology, PartitionAutoCoAssignsZeroDelayNeighbors) {
  const FabricTopology topo = ChainWithZeroDelayBridge();
  const std::vector<int> owner = topo.Partition(2);
  EXPECT_EQ(owner[1], owner[2]) << "zero-delay neighbors must share a shard";
  EXPECT_NE(owner[0], owner[3]) << "partition should still split the chain";
  EXPECT_EQ(topo.Lookahead(owner, net::Seconds(1)), net::Millis(1));
}

TEST(FabricTopology, ExplicitZeroDelaySplitIsRejectedWithClearError) {
  const FabricTopology topo = ChainWithZeroDelayBridge();
  const std::vector<int> split = {0, 0, 1, 1};  // cuts the zero-delay edge
  try {
    topo.ValidatePartition(split);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("zero-propagation-delay"), std::string::npos);
  }
  EXPECT_THROW(topo.Lookahead(split, net::Seconds(1)), std::invalid_argument);
  const std::vector<int> fine = {0, 1, 1, 1};
  EXPECT_NO_THROW(topo.ValidatePartition(fine));
}

TEST(FabricTopology, BackboneRoutesAreSymmetricallyReachable) {
  const FabricTopology topo = FabricTopology::Backbone();
  for (std::size_t i = 0; i < topo.metro_count(); ++i) {
    for (std::size_t j = 0; j < topo.metro_count(); ++j) {
      EXPECT_GE(topo.next_hop(static_cast<int>(i), static_cast<int>(j)), 0);
      EXPECT_EQ(topo.path_delay(static_cast<int>(i), static_cast<int>(j)),
                topo.path_delay(static_cast<int>(j), static_cast<int>(i)));
    }
  }
}

// --- express vs per-hop delivery engines -------------------------------------

TEST(FleetExpress, ConfigAndKnobSelectEngine) {
  FleetConfig cfg = SmallFleet();
  unsetenv("VTP_FLEET_PATH");
  EXPECT_TRUE(FleetSim(cfg).UsesExpressPath());  // knob default
  setenv("VTP_FLEET_PATH", "hops", 1);
  EXPECT_FALSE(FleetSim(cfg).UsesExpressPath());
  cfg.path = "express";  // explicit config override beats the env
  EXPECT_TRUE(FleetSim(cfg).UsesExpressPath());
  unsetenv("VTP_FLEET_PATH");
  cfg.path = "bogus";
  EXPECT_THROW(FleetSim{cfg}, std::invalid_argument);
}

TEST(FleetExpress, DigestIsBitIdenticalToPerHopAcrossShardCountsAndHarnesses) {
  // The tentpole contract: the express engine (no per-hop events, analytic
  // fast-forwarding from the hop heap) must reproduce the per-hop reference
  // bit-for-bit — same merged snapshot, any shard count, both harnesses.
  std::vector<FleetResult> results;
  for (const char* path : {"hops", "express"}) {
    FleetConfig cfg = SmallFleet();
    cfg.path = path;
    results.push_back(FleetSim(cfg).RunDirect());
    for (int shards : {1, 2, 4}) {
      FleetConfig c = SmallFleet();
      c.path = path;
      c.shards = shards;
      results.push_back(FleetSim(c).Run());
    }
  }
  ASSERT_GT(results[0].frames_delivered, 1000u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].digest, results[0].digest)
        << results[i].path << " shards=" << results[i].shards;
    EXPECT_EQ(results[i].merged.ToJson(), results[0].merged.ToJson());
    EXPECT_EQ(results[i].hops, results[0].hops);
  }
  // Express really skipped the per-hop events: same hops, but far fewer
  // Simulator events than one-per-traversal (results[1] = hops shards=1,
  // results[5] = express shards=1).
  EXPECT_EQ(results[1].path, "hops");
  EXPECT_EQ(results[5].path, "express");
  EXPECT_LT(results[5].events * 10, results[1].events);
}

TEST(FleetExpress, FaultedScenarioForcesFallbackAndStaysBitIdentical) {
  // Flap + Gilbert-Elliott burst + stepped rate ramp, all mid-run: the
  // express engine must drain around every fault transition and still match
  // the per-hop reference exactly, at 1 shard and across a 4-way partition.
  FleetConfig probe_cfg = SmallFleet();
  FleetSim probe(probe_cfg);
  const FleetResult clean_run = probe.Run();
  // The three busiest edges, so every impairment provably carries traffic.
  std::vector<std::pair<std::uint64_t, std::size_t>> by_traffic;
  for (std::size_t i = 0; i < probe.topology().edges().size(); ++i) {
    const std::uint64_t traffic =
        clean_run.merged.counter("fabric.e" + std::to_string(i) + ".f.packets_sent");
    by_traffic.emplace_back(traffic, i);
  }
  std::sort(by_traffic.rbegin(), by_traffic.rend());
  ASSERT_GE(by_traffic.size(), 3u);
  ASSERT_GT(by_traffic[2].first, 0u);
  const FabricEdge& flap_e = probe.topology().edges()[by_traffic[0].second];
  const FabricEdge& burst_e = probe.topology().edges()[by_traffic[1].second];
  const FabricEdge& ramp_e = probe.topology().edges()[by_traffic[2].second];

  net::BurstLossConfig burst;
  burst.p_enter = 0.02;
  burst.p_exit = 0.25;
  burst.loss_bad = 0.8;
  std::vector<FleetResult> results;
  for (const char* path : {"hops", "express"}) {
    for (int shards : {1, 4}) {
      FleetConfig cfg = SmallFleet();
      cfg.path = path;
      cfg.shards = shards;
      FleetSim fleet(cfg);
      fleet.ScheduleFlap(flap_e.a, flap_e.b, net::Millis(400), net::Millis(300));
      fleet.ScheduleBurstLoss(burst_e.a, burst_e.b, net::Millis(200), net::Millis(900), burst);
      fleet.ScheduleRateRamp(ramp_e.a, ramp_e.b, net::Millis(600), net::Millis(800), 2e9, 2e6,
                             4);
      results.push_back(fleet.Run());
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].digest, results[0].digest)
        << results[i].path << " shards=" << results[i].shards;
    EXPECT_EQ(results[i].merged.ToJson(), results[0].merged.ToJson());
  }
  // Every impairment actually fired and actually bit.
  EXPECT_EQ(results[0].merged.counter("fabric.flap_transitions"), 2u);
  EXPECT_GT(results[0].merged.counter("fabric.fault_transitions"), 0u);
  const std::string burst_scope = "fabric.e" + std::to_string(by_traffic[1].second) + ".f";
  EXPECT_GT(results[0].merged.counter(burst_scope + ".dropped_loss"), 0u);
  EXPECT_NE(results[0].digest, clean_run.digest);
}

// --- fault injection on boundary links --------------------------------------

TEST(FleetFaults, BoundaryFlapFiresExactlyOnceAtAnyShardCount) {
  // Find an edge that crosses shards in the 4-way partition of this fleet's
  // load, so the flap's owner and its neighbors genuinely disagree.
  FleetConfig probe_cfg = SmallFleet();
  FleetSim probe(probe_cfg);
  const std::vector<double> weights = LoadWeights(probe);
  const std::vector<int> owner = probe.topology().Partition(4, &weights);
  const FleetResult clean_run = probe.Run();
  // Of the edges that cross shards, flap the one carrying the most traffic
  // so the fault provably bites.
  int flap_a = -1, flap_b = -1;
  std::size_t flap_edge = 0;
  std::uint64_t best_traffic = 0;
  for (std::size_t i = 0; i < probe.topology().edges().size(); ++i) {
    const FabricEdge& e = probe.topology().edges()[i];
    if (owner[static_cast<std::size_t>(e.a)] == owner[static_cast<std::size_t>(e.b)]) continue;
    const std::uint64_t traffic =
        clean_run.merged.counter("fabric.e" + std::to_string(i) + ".f.packets_sent");
    if (flap_a < 0 || traffic > best_traffic) {
      flap_a = e.a;
      flap_b = e.b;
      flap_edge = i;
      best_traffic = traffic;
    }
  }
  ASSERT_GE(flap_a, 0) << "no cross-shard edge in the 4-way partition";
  ASSERT_GT(best_traffic, 0u) << "chosen boundary link carries no traffic";

  std::vector<FleetResult> results;
  for (int shards : {1, 2, 4}) {
    FleetConfig cfg = SmallFleet();
    cfg.shards = shards;
    FleetSim fleet(cfg);
    fleet.ScheduleFlap(flap_a, flap_b, net::Millis(500), net::Millis(400));
    results.push_back(fleet.Run());
  }
  for (const FleetResult& r : results) {
    // Exactly one down + one up transition fleet-wide: only the owning
    // shard arms the flap, and every other shard's counter stays zero.
    EXPECT_EQ(r.merged.counter("fabric.flap_transitions"), 2u);
    EXPECT_EQ(r.digest, results[0].digest);
  }
  // The flap really bit: the faulted direction dropped traffic, and the
  // fleet-wide outcome differs from an unfaulted run.
  const std::string scope = "fabric.e" + std::to_string(flap_edge) + ".f";
  EXPECT_GT(results[0].merged.counter(scope + ".dropped_loss"), 0u);
  EXPECT_NE(clean_run.digest, results[0].digest);
}

}  // namespace
}  // namespace vtp
