// Tests for the simulation-core overhaul: the timer-wheel scheduler (against
// the legacy heap engine), the pooled packet buffers, and the parallel bench
// runner. The differential tests are the determinism contract: both engines
// must produce byte-identical execution orders and results for any trace.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <random>
#include <stdexcept>
#include <vector>

#include <thread>

#include "bench/bench_util.h"
#include "core/env.h"
#include "core/spsc.h"
#include "core/rtt_matrix.h"
#include "core/thread_pool.h"
#include "netsim/event_queue.h"
#include "netsim/packet_buffer.h"

namespace vtp {
namespace {

using net::Simulator;

// --- wheel scheduler semantics ---------------------------------------------

TEST(TimerWheel, SameInstantIsFifo) {
  Simulator sim(1, Simulator::Scheduler::kWheel);
  std::vector<int> order;
  sim.At(net::Micros(100), [&order] { order.push_back(1); });
  sim.At(net::Micros(100), [&order] { order.push_back(2); });
  sim.At(net::Micros(50), [&order] { order.push_back(0); });
  sim.At(net::Micros(100), [&order] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TimerWheel, SameTickDifferentTimesStayOrdered) {
  // Distinct nanosecond times inside one 1.024 us wheel tick must still run
  // in time order, not insertion order.
  Simulator sim(1, Simulator::Scheduler::kWheel);
  std::vector<int> order;
  sim.At(900, [&order] { order.push_back(2); });
  sim.At(100, [&order] { order.push_back(0); });
  sim.At(500, [&order] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TimerWheel, EventsCanScheduleMoreEvents) {
  Simulator sim(1, Simulator::Scheduler::kWheel);
  std::vector<net::SimTime> fired;
  sim.At(net::Millis(1), [&] {
    fired.push_back(sim.now());
    sim.After(net::Millis(2), [&] { fired.push_back(sim.now()); });
    sim.After(0, [&] { fired.push_back(sim.now()); });  // same instant, runs next
  });
  sim.Run();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], net::Millis(1));
  EXPECT_EQ(fired[1], net::Millis(1));
  EXPECT_EQ(fired[2], net::Millis(3));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(TimerWheel, RunUntilAdvancesClockAndStops) {
  Simulator sim(1, Simulator::Scheduler::kWheel);
  std::vector<int> order;
  sim.At(net::Millis(10), [&order] { order.push_back(10); });
  sim.At(net::Millis(20), [&order] { order.push_back(20); });
  sim.At(net::Millis(30), [&order] { order.push_back(30); });
  sim.RunUntil(net::Millis(25));
  EXPECT_EQ(order, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.now(), net::Millis(25));
  sim.RunUntil(net::Millis(40));
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(sim.now(), net::Millis(40));
}

TEST(TimerWheel, PastEventsClampToNow) {
  Simulator sim(1, Simulator::Scheduler::kWheel);
  net::SimTime ran_at = -1;
  sim.At(net::Millis(5), [&] {
    sim.At(net::Millis(1), [&] { ran_at = sim.now(); });  // in the past
  });
  sim.Run();
  EXPECT_EQ(ran_at, net::Millis(5));
}

TEST(TimerWheel, StopMidRunAndResume) {
  Simulator sim(1, Simulator::Scheduler::kWheel);
  std::vector<int> order;
  sim.At(net::Millis(1), [&] {
    order.push_back(1);
    sim.Stop();
  });
  sim.At(net::Millis(2), [&order] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), net::Millis(1));
  sim.Run();  // resumes; Run() clears the stop flag like the legacy engine
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, FarTimersCrossWheelLevelsAndOverflow) {
  Simulator sim(1, Simulator::Scheduler::kWheel);
  std::vector<int> order;
  // Spread across level 0 (us), level 1 (ms), level 2 (minutes), and past the
  // ~2.4 h wheel horizon into the overflow heap.
  sim.At(net::Seconds(3 * 3600), [&order] { order.push_back(4); });  // overflow
  sim.At(net::Seconds(120), [&order] { order.push_back(3); });
  sim.At(net::Millis(40), [&order] { order.push_back(2); });
  sim.At(net::Micros(5), [&order] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), net::Seconds(3 * 3600));
  EXPECT_GE(sim.scheduler_stats().overflow_inserts, 1u);
}

TEST(TimerWheel, OversizedCapturesFallBackToHeap) {
  Simulator sim(1, Simulator::Scheduler::kWheel);
  std::array<char, 100> big{};
  big[0] = 1;
  int out = 0;
  sim.At(1, [big, &out] { out = big[0]; });
  sim.Run();
  EXPECT_EQ(out, 1);
  EXPECT_EQ(sim.scheduler_stats().callback_heap_allocs, 1u);
}

TEST(Scheduler, EnvSelectsEngine) {
  setenv("VTP_SIM_SCHEDULER", "heap", 1);
  Simulator heap_sim(1);
  EXPECT_EQ(heap_sim.scheduler(), Simulator::Scheduler::kHeap);
  unsetenv("VTP_SIM_SCHEDULER");
  Simulator wheel_sim(1);
  EXPECT_EQ(wheel_sim.scheduler(), Simulator::Scheduler::kWheel);
}

// --- differential: wheel vs legacy heap ------------------------------------

/// A self-expanding random event tree. Every node logs its id; both engines
/// must replay the identical log because the rng draws happen in execution
/// order, which the determinism contract fixes.
struct TraceNode {
  Simulator* sim;
  std::vector<std::uint64_t>* log;
  std::mt19937_64* rng;
  std::uint64_t* next_id;
  int depth;
  std::uint64_t id;

  void operator()() const {
    log->push_back(id);
    if (depth >= 4) return;
    const int kids = static_cast<int>((*rng)() % 3);
    for (int k = 0; k < kids; ++k) {
      // Mostly short delays (including 0 → same-instant FIFO), occasionally
      // far ones that land in outer wheel levels or the overflow heap.
      net::SimTime delay = static_cast<net::SimTime>((*rng)() % net::Millis(5));
      if ((*rng)() % 16 == 0) delay = static_cast<net::SimTime>((*rng)() % net::Seconds(9000));
      sim->After(delay, TraceNode{sim, log, rng, next_id, depth + 1, (*next_id)++});
    }
  }
};

struct TraceResult {
  std::vector<std::uint64_t> log;
  std::uint64_t executed;
  net::SimTime end_time;
};

TraceResult RunTrace(Simulator::Scheduler scheduler) {
  Simulator sim(123, scheduler);
  TraceResult result;
  std::mt19937_64 rng(99);
  std::uint64_t next_id = 0;
  for (int i = 0; i < 200; ++i) {
    const auto delay = static_cast<net::SimTime>(rng() % net::Millis(2));
    sim.After(delay, TraceNode{&sim, &result.log, &rng, &next_id, 0, next_id});
    ++next_id;
  }
  sim.Run();
  result.executed = sim.events_executed();
  result.end_time = sim.now();
  return result;
}

TEST(SchedulerDifferential, RandomTraceExecutesIdentically) {
  const TraceResult wheel = RunTrace(Simulator::Scheduler::kWheel);
  const TraceResult heap = RunTrace(Simulator::Scheduler::kHeap);
  EXPECT_EQ(wheel.executed, heap.executed);
  EXPECT_EQ(wheel.end_time, heap.end_time);
  ASSERT_EQ(wheel.log.size(), heap.log.size());
  EXPECT_EQ(wheel.log, heap.log);
  EXPECT_GT(wheel.log.size(), 200u);  // the tree actually expanded
}

TEST(SchedulerDifferential, RttMatrixIsBitIdenticalAcrossEngines) {
  core::RttProbeSpec spec;
  spec.clients = {{"W", "SanFrancisco"}, {"E", "NewYork"}};
  spec.servers = {{"S1", "SanJose"}, {"S2", "Ashburn"}};
  spec.pings_per_pair = 5;

  setenv("VTP_SIM_SCHEDULER", "wheel", 1);
  const core::RttMatrix wheel = core::MeasureRttMatrix(spec);
  setenv("VTP_SIM_SCHEDULER", "heap", 1);
  const core::RttMatrix heap = core::MeasureRttMatrix(spec);
  unsetenv("VTP_SIM_SCHEDULER");

  for (std::size_t c = 0; c < spec.clients.size(); ++c) {
    for (std::size_t s = 0; s < spec.servers.size(); ++s) {
      EXPECT_EQ(wheel.rtt_ms[c][s].mean, heap.rtt_ms[c][s].mean) << c << "," << s;
      EXPECT_EQ(wheel.rtt_ms[c][s].stddev, heap.rtt_ms[c][s].stddev) << c << "," << s;
    }
  }
}

// --- packet buffers ---------------------------------------------------------

TEST(PacketBuffer, CopyOfAndRefCounting) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};
  net::PacketBuffer a = net::PacketBuffer::CopyOf(bytes);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), bytes.begin()));
  EXPECT_EQ(a.ref_count(), 1u);
  {
    net::PacketBuffer b = a;  // share, no copy
    EXPECT_EQ(a.ref_count(), 2u);
    EXPECT_EQ(b.data(), a.data());
  }
  EXPECT_EQ(a.ref_count(), 1u);
}

TEST(PacketBuffer, AssignDetachesFromSharedBlock) {
  net::PacketBuffer a = net::PacketBuffer::CopyOf(std::vector<std::uint8_t>{9, 9, 9});
  net::PacketBuffer b = a;
  b.assign(10, 7);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], 9u);
  EXPECT_EQ(b.size(), 10u);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 7u);
  EXPECT_EQ(a.ref_count(), 1u);
  EXPECT_EQ(b.ref_count(), 1u);
}

TEST(PacketBuffer, PoolRecyclesReleasedBlocks) {
  net::PacketPool::ThreadLocal().ResetStats();
  { net::PacketBuffer first(972); }  // released back to the 1536-byte class
  net::PacketBuffer second(972);     // must come from the free list
  const net::PacketPoolStats& stats = net::PacketPool::ThreadLocal().stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_GE(stats.pool_hits, 1u);
}

TEST(PacketBuffer, SpanConversionSeesPayload) {
  net::PacketBuffer buf = net::PacketBuffer::CopyOf(std::vector<std::uint8_t>{10, 20, 30});
  const std::span<const std::uint8_t> view = buf;
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[1], 20u);
}

// --- thread pool & parallel repeats ----------------------------------------

TEST(ThreadPool, RunsAllJobs) {
  core::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitRethrowsJobException) {
  core::ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

std::vector<std::uint64_t> SimRunCounts() {
  // Each index runs an independent Simulator; the result must not depend on
  // which worker ran it or in what order.
  return bench::ParallelRepeats(8, [](int i) {
    Simulator sim(static_cast<std::uint64_t>(1 + i));
    std::uint64_t ticks = 0;
    for (int k = 0; k <= i; ++k) {
      sim.After(net::Micros(10 * (k + 1)), [&ticks] { ++ticks; });
    }
    sim.Run();
    return ticks + sim.events_executed();
  });
}

TEST(ParallelRepeats, ResultsAreIndexOrderedAndThreadCountIndependent) {
  setenv("VTP_BENCH_THREADS", "1", 1);
  const std::vector<std::uint64_t> serial = SimRunCounts();
  setenv("VTP_BENCH_THREADS", "4", 1);
  const std::vector<std::uint64_t> parallel = SimRunCounts();
  unsetenv("VTP_BENCH_THREADS");
  ASSERT_EQ(serial.size(), 8u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], 2 * (i + 1)) << i;  // ticks + events_executed
  }
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, WorkerIndexIsBoundedInsideJobsAndMinusOneOutside) {
  EXPECT_EQ(core::ThreadPool::CurrentWorkerIndex(), -1);
  core::ThreadPool pool(3);
  std::atomic<int> bad{0};
  std::array<std::atomic<int>, 3> seen{};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      const int idx = core::ThreadPool::CurrentWorkerIndex();
      if (idx < 0 || idx >= 3) {
        ++bad;
      } else {
        ++seen[static_cast<std::size_t>(idx)];
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(bad.load(), 0);
  int total = 0;
  for (const auto& s : seen) total += s.load();
  EXPECT_EQ(total, 64);
  // Worker-locality: the index is a pool-worker property, not leaked to the
  // caller after Wait().
  EXPECT_EQ(core::ThreadPool::CurrentWorkerIndex(), -1);
}

TEST(ParallelRepeats, SingleThreadKnobForcesStrictlySerialExecution) {
  setenv("VTP_BENCH_THREADS", "1", 1);
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  std::atomic<int> off_pool{0};
  bench::ParallelRepeats(16, [&](int i) {
    const int now = ++live;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    // The serial path runs inline on the caller, not on pool workers.
    if (core::ThreadPool::CurrentWorkerIndex() == -1) ++off_pool;
    --live;
    return i;
  });
  unsetenv("VTP_BENCH_THREADS");
  EXPECT_EQ(peak.load(), 1);     // never two repeats in flight
  EXPECT_EQ(off_pool.load(), 16);
}

// --- cross-thread block handoff ---------------------------------------------

TEST(PacketBuffer, ReleaseAndAdoptBlockMoveOwnershipAcrossThreads) {
  const auto base = net::PacketPool::ThreadLocal().stats().outstanding;
  net::PacketBuffer buf(32);
  {
    auto bytes = buf.writable();
    for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(net::PacketPool::ThreadLocal().stats().outstanding, base + 1);
  void* block = buf.ReleaseBlock();
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(buf.size(), 0u);  // handle is empty after release
  EXPECT_EQ(net::PacketPool::ThreadLocal().stats().outstanding, base);

  bool ok = false;
  std::thread receiver([block, &ok] {
    net::PacketBuffer adopted = net::PacketBuffer::AdoptBlock(block);
    ok = adopted.size() == 32 && adopted[7] == 7 && adopted.ref_count() == 1 &&
         net::PacketPool::ThreadLocal().stats().outstanding >= 1;
    // adopted drops here: the block recycles into the receiving thread's pool.
  });
  receiver.join();
  EXPECT_TRUE(ok);
}

// --- SPSC ring ---------------------------------------------------------------

TEST(SpscRing, PushPopWrapsAndReportsFull) {
  core::SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));
  // Fill, drain, and wrap several times so the indices cross the mask.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(round * 10 + i));
    EXPECT_FALSE(ring.TryPush(99));  // full
    EXPECT_EQ(ring.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring.TryPop(&out));
      EXPECT_EQ(out, round * 10 + i);  // FIFO
    }
    EXPECT_FALSE(ring.TryPop(&out));
  }
}

TEST(SpscRing, TransfersAcrossProducerConsumerThreads) {
  core::SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 20000;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(std::uint64_t{i})) {
      }
    }
  });
  std::uint64_t expect = 0, sum = 0;
  while (expect < kCount) {
    std::uint64_t v;
    if (!ring.TryPop(&v)) continue;
    ASSERT_EQ(v, expect);  // order preserved
    sum += v;
    ++expect;
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

// --- env helpers ------------------------------------------------------------

TEST(Env, IntFlagAndStringParsing) {
  setenv("VTP_TEST_INT", "42", 1);
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 42);
  setenv("VTP_TEST_INT", "notanint", 1);
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 7);
  unsetenv("VTP_TEST_INT");
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 7);

  setenv("VTP_TEST_FLAG", "1", 1);
  EXPECT_TRUE(core::EnvFlag("VTP_TEST_FLAG"));
  setenv("VTP_TEST_FLAG", "0", 1);
  EXPECT_FALSE(core::EnvFlag("VTP_TEST_FLAG"));
  unsetenv("VTP_TEST_FLAG");
  EXPECT_FALSE(core::EnvFlag("VTP_TEST_FLAG"));

  EXPECT_EQ(core::EnvString("VTP_TEST_STR", "fallback"), "fallback");
}

TEST(Env, IntRejectsOverflowAndTrailingGarbage) {
  // Regression: strtol clamps out-of-range input to LONG_MIN/LONG_MAX and the
  // old static_cast<int> then wrapped it to an arbitrary value. Anything that
  // does not round-trip as an int must fall back instead.
  setenv("VTP_TEST_INT", "99999999999999999999", 1);  // > LONG_MAX
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 7);
  setenv("VTP_TEST_INT", "-99999999999999999999", 1);  // < LONG_MIN
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 7);
  setenv("VTP_TEST_INT", "2147483648", 1);  // INT_MAX + 1 (fits in long on LP64)
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 7);
  setenv("VTP_TEST_INT", "-2147483649", 1);  // INT_MIN - 1
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 7);
  setenv("VTP_TEST_INT", "2147483647", 1);  // exactly INT_MAX: accepted
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 2147483647);
  setenv("VTP_TEST_INT", "-2147483648", 1);  // exactly INT_MIN: accepted
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), -2147483648);

  setenv("VTP_TEST_INT", "42abc", 1);  // trailing garbage
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 7);
  setenv("VTP_TEST_INT", "42 ", 1);  // trailing space counts too
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 7);
  setenv("VTP_TEST_INT", "", 1);  // empty string
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), 7);
  setenv("VTP_TEST_INT", "-8", 1);
  EXPECT_EQ(core::EnvInt("VTP_TEST_INT", 7), -8);
  unsetenv("VTP_TEST_INT");
}

}  // namespace
}  // namespace vtp
