// Tests for meshes, the procedural generator, the Draco-like codec, and the
// LOD simplifier.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/bitstream.h"
#include "mesh/codec.h"
#include "mesh/generator.h"
#include "mesh/mesh.h"
#include "mesh/simplify.h"

namespace vtp::mesh {
namespace {

// --- basic mesh type ---------------------------------------------------------

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_FLOAT_EQ((a + b).y, 7);
  EXPECT_FLOAT_EQ((b - a).z, 3);
  EXPECT_FLOAT_EQ(a.Dot(b), 32);
  const Vec3 c = Vec3{1, 0, 0}.Cross(Vec3{0, 1, 0});
  EXPECT_FLOAT_EQ(c.z, 1);
  EXPECT_FLOAT_EQ((Vec3{3, 4, 0}).Length(), 5);
  EXPECT_NEAR((Vec3{10, 0, 0}).Normalized().x, 1.0f, 1e-6);
}

TEST(Aabb, ExtendAndSize) {
  Aabb box;
  box.Extend({1, 2, 3});
  box.Extend({-1, 5, 0});
  EXPECT_FLOAT_EQ(box.Size().x, 2);
  EXPECT_FLOAT_EQ(box.Size().y, 3);
  EXPECT_FLOAT_EQ(box.Center().z, 1.5);
}

TEST(TriangleMesh, ValidityChecks) {
  TriangleMesh m;
  m.positions = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  m.triangles = {{0, 1, 2}};
  EXPECT_TRUE(m.IsValid());
  m.triangles.push_back({0, 0, 1});  // degenerate
  EXPECT_FALSE(m.IsValid());
  m.triangles.back() = {0, 1, 9};  // out of range
  EXPECT_FALSE(m.IsValid());
}

// --- generator -----------------------------------------------------------------

class GeneratorTriangleBudget : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorTriangleBudget, HitsRequestedCountWithinOnePercent) {
  const std::size_t target = GetParam();
  const TriangleMesh head = GenerateHead(target, 1);
  EXPECT_TRUE(head.IsValid());
  EXPECT_NEAR(static_cast<double>(head.triangle_count()), static_cast<double>(target),
              static_cast<double>(target) * 0.01 + 8);
}

INSTANTIATE_TEST_SUITE_P(Budgets, GeneratorTriangleBudget,
                         ::testing::Values(2000, 10000, 62424, 70000, 78030, 90000));

TEST(Generator, PersonaMatchesRealityKitCount) {
  // The paper's RealityKit tool reports 78,030 triangles per persona (§4.3).
  const TriangleMesh persona = GeneratePersona(7);
  EXPECT_TRUE(persona.IsValid());
  EXPECT_NEAR(static_cast<double>(persona.triangle_count()), 78030.0, 100.0);
}

TEST(Generator, SeedsProduceDistinctGeometry) {
  const TriangleMesh a = GenerateHead(10000, 1);
  const TriangleMesh b = GenerateHead(10000, 2);
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  double diff = 0;
  for (std::size_t i = 0; i < a.vertex_count(); ++i) {
    diff += static_cast<double>((a.positions[i] - b.positions[i]).Length());
  }
  EXPECT_GT(diff / static_cast<double>(a.vertex_count()), 1e-4);
}

TEST(Generator, SameSeedIsDeterministic) {
  const TriangleMesh a = GenerateHead(5000, 3);
  const TriangleMesh b = GenerateHead(5000, 3);
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  for (std::size_t i = 0; i < a.vertex_count(); ++i) {
    EXPECT_FLOAT_EQ(a.positions[i].x, b.positions[i].x);
  }
}

TEST(Generator, HeadHasHumanScale) {
  const TriangleMesh head = GenerateHead(20000, 1);
  const Aabb box = head.Bounds();
  EXPECT_GT(box.Size().y, 0.18f);  // ~22 cm tall
  EXPECT_LT(box.Size().y, 0.30f);
  EXPECT_GT(head.SurfaceArea(), 0.05);  // a head is a few hundred cm^2
  EXPECT_LT(head.SurfaceArea(), 0.5);
}

// --- codec ------------------------------------------------------------------------

TEST(MeshCodec, RoundTripPreservesConnectivityExactly) {
  const TriangleMesh mesh = GenerateHead(8000, 4);
  const auto encoded = EncodeMesh(mesh);
  const TriangleMesh decoded = DecodeMesh(encoded);
  ASSERT_EQ(decoded.triangle_count(), mesh.triangle_count());
  ASSERT_EQ(decoded.vertex_count(), mesh.vertex_count());
  for (std::size_t i = 0; i < mesh.triangle_count(); ++i) {
    EXPECT_EQ(decoded.triangles[i], mesh.triangles[i]);
  }
}

class MeshCodecQuantization : public ::testing::TestWithParam<int> {};

TEST_P(MeshCodecQuantization, PositionsWithinQuantizationError) {
  const MeshCodecConfig config{.position_bits = GetParam()};
  const TriangleMesh mesh = GenerateHead(6000, 5);
  const float tolerance = QuantizationError(mesh, config) * 2.01f;
  const TriangleMesh decoded = DecodeMesh(EncodeMesh(mesh, config));
  for (std::size_t i = 0; i < mesh.vertex_count(); ++i) {
    const Vec3 d = decoded.positions[i] - mesh.positions[i];
    EXPECT_LE(std::abs(d.x), tolerance);
    EXPECT_LE(std::abs(d.y), tolerance);
    EXPECT_LE(std::abs(d.z), tolerance);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, MeshCodecQuantization, ::testing::Values(8, 10, 12, 14, 16));

TEST(MeshCodec, CompressionBeatsRawAndScalesWithQuantization) {
  const TriangleMesh mesh = GenerateHead(20000, 6);
  const std::size_t raw = mesh.vertex_count() * 12 + mesh.triangle_count() * 12;
  const std::size_t at14 = EncodeMesh(mesh, {.position_bits = 14}).size();
  const std::size_t at10 = EncodeMesh(mesh, {.position_bits = 10}).size();
  EXPECT_LT(at14, raw / 3);
  EXPECT_LT(at10, at14);  // fewer bits -> smaller stream
}

TEST(MeshCodec, DracoClassBytesPerTriangle) {
  // §4.3 math: ~70-90 K-triangle scans at ~1-3 bytes/triangle is what makes
  // direct 3D streaming cost ~100+ Mbps at 90 FPS.
  const TriangleMesh mesh = GeneratePersona(8);
  const std::size_t bytes = EncodeMesh(mesh).size();
  const double per_tri = static_cast<double>(bytes) / static_cast<double>(mesh.triangle_count());
  EXPECT_GT(per_tri, 0.5);
  EXPECT_LT(per_tri, 4.0);
}

TEST(MeshCodec, EmptyMeshRoundTrips) {
  const TriangleMesh decoded = DecodeMesh(EncodeMesh(TriangleMesh{}));
  EXPECT_EQ(decoded.vertex_count(), 0u);
  EXPECT_EQ(decoded.triangle_count(), 0u);
}

TEST(MeshCodec, CorruptInputsThrow) {
  EXPECT_THROW(DecodeMesh(std::vector<std::uint8_t>{1, 2, 3}), compress::CorruptStream);
  auto encoded = EncodeMesh(GenerateHead(2000, 1));
  encoded[0] = 'X';
  EXPECT_THROW(DecodeMesh(encoded), compress::CorruptStream);
  auto truncated = EncodeMesh(GenerateHead(2000, 1));
  truncated.resize(truncated.size() / 3);
  EXPECT_ANY_THROW(DecodeMesh(truncated));
}

TEST(MeshCodec, RejectsBadQuantizationBits) {
  EXPECT_THROW(EncodeMesh(TriangleMesh{}, {.position_bits = 0}), std::invalid_argument);
  EXPECT_THROW(EncodeMesh(TriangleMesh{}, {.position_bits = 22}), std::invalid_argument);
}

// --- simplifier ----------------------------------------------------------------------

TEST(Simplify, GridReducesTrianglesMonotonically) {
  const TriangleMesh mesh = GenerateHead(30000, 9);
  std::size_t prev = mesh.triangle_count() + 1;
  for (const std::size_t cells : {256u, 64u, 16u, 8u}) {
    const TriangleMesh simplified = SimplifyGrid(mesh, cells);
    EXPECT_TRUE(simplified.IsValid());
    EXPECT_LE(simplified.triangle_count(), prev);
    prev = simplified.triangle_count();
  }
}

TEST(Simplify, PreservesOverallShape) {
  const TriangleMesh mesh = GenerateHead(30000, 9);
  const TriangleMesh simplified = SimplifyToFraction(mesh, 0.3);
  const Aabb a = mesh.Bounds(), b = simplified.Bounds();
  EXPECT_NEAR(a.Size().x, b.Size().x, 0.02f);
  EXPECT_NEAR(a.Size().y, b.Size().y, 0.02f);
  EXPECT_NEAR(a.Size().z, b.Size().z, 0.02f);
}

class SimplifyFraction : public ::testing::TestWithParam<double> {};

TEST_P(SimplifyFraction, LandsNearRequestedFraction) {
  const TriangleMesh mesh = GenerateHead(40000, 10);
  const double fraction = GetParam();
  const TriangleMesh simplified = SimplifyToFraction(mesh, fraction);
  const double achieved = static_cast<double>(simplified.triangle_count()) /
                          static_cast<double>(mesh.triangle_count());
  EXPECT_NEAR(achieved, fraction, fraction * 0.35 + 0.02);
}

// The paper's ratios: peripheral 21036/78030 = 0.27, distance 45036/78030 = 0.577.
INSTANTIATE_TEST_SUITE_P(Fractions, SimplifyFraction, ::testing::Values(0.27, 0.577, 0.8, 0.1));

TEST(Simplify, BoundingBoxProxyIsTwelveTriangles) {
  const TriangleMesh mesh = GenerateHead(5000, 2);
  const TriangleMesh proxy = BoundingBoxProxy(mesh);
  EXPECT_EQ(proxy.triangle_count(), 12u);
  EXPECT_EQ(proxy.vertex_count(), 8u);
  EXPECT_TRUE(proxy.IsValid());
  const Aabb a = mesh.Bounds(), b = proxy.Bounds();
  EXPECT_FLOAT_EQ(a.Size().x, b.Size().x);
}

}  // namespace
}  // namespace vtp::mesh
