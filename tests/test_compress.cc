// Unit and property tests for the compression substrate.
#include <gtest/gtest.h>

#include <random>

#include "compress/bitstream.h"
#include "compress/crc32.h"
#include "compress/entropy.h"
#include "compress/lz77.h"
#include "compress/lzr.h"
#include "compress/range_coder.h"
#include "compress/varint.h"

namespace vtp::compress {
namespace {

// --- bitstream -------------------------------------------------------------

TEST(Bitstream, RoundTripsMixedWidths) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.WriteBits(0xDEADBEEF, 32);
  w.WriteBit(true);
  w.WriteBits(0x3FF, 10);
  const auto bytes = w.Finish();

  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(3), 0b101u);
  EXPECT_EQ(r.ReadBits(32), 0xDEADBEEFu);
  EXPECT_TRUE(r.ReadBit());
  EXPECT_EQ(r.ReadBits(10), 0x3FFu);
}

TEST(Bitstream, AlignAndBytes) {
  BitWriter w;
  w.WriteBits(1, 1);
  w.AlignToByte();
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  w.WriteBytes(payload);
  const auto bytes = w.Finish();
  ASSERT_EQ(bytes.size(), 4u);

  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(1), 1u);
  r.AlignToByte();
  std::vector<std::uint8_t> out(3);
  r.ReadBytes(out);
  EXPECT_EQ(out, payload);
}

TEST(Bitstream, TruncatedReadThrows) {
  const std::vector<std::uint8_t> one = {0xAB};
  BitReader r(one);
  EXPECT_EQ(r.ReadBits(8), 0xABu);
  EXPECT_THROW(r.ReadBits(1), CorruptStream);
}

TEST(Bitstream, RandomRoundTrip) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<std::uint64_t, int>> items;
    BitWriter w;
    for (int i = 0; i < 200; ++i) {
      const int bits = static_cast<int>(rng() % 64) + 1;
      const std::uint64_t value = rng() & ((bits == 64) ? ~0ull : ((1ull << bits) - 1));
      items.emplace_back(value, bits);
      w.WriteBits(value, bits);
    }
    const auto bytes = w.Finish();
    BitReader r(bytes);
    for (const auto& [value, bits] : items) {
      EXPECT_EQ(r.ReadBits(bits), value);
    }
  }
}

// --- varint / zigzag --------------------------------------------------------

TEST(Varint, Uleb128Boundaries) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, ~0ull, 1ull << 62}) {
    std::vector<std::uint8_t> buf;
    PutUleb128(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(GetUleb128(buf, &pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, TruncatedThrows) {
  std::vector<std::uint8_t> buf;
  PutUleb128(buf, 1u << 20);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW(GetUleb128(buf, &pos), CorruptStream);
}

TEST(Varint, ZigZagIsInvolutionAndOrdersMagnitude) {
  const std::vector<std::int64_t> cases = {0,       -1,       1,
                                           -2,      2,        1000000,
                                           -1000000, std::numeric_limits<std::int64_t>::max(),
                                           std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_LT(ZigZagEncode(1), ZigZagEncode(-3));
  EXPECT_LT(ZigZagEncode(-1), ZigZagEncode(2));
}

// --- range coder -------------------------------------------------------------

TEST(RangeCoder, BiasedBitsCompressBelowOneBitEach) {
  std::mt19937_64 rng(42);
  std::vector<int> bits;
  for (int i = 0; i < 20000; ++i) bits.push_back(rng() % 100 < 5 ? 1 : 0);

  std::vector<std::uint8_t> buf;
  RangeEncoder enc(&buf);
  BitModel model;
  for (const int b : bits) enc.EncodeBit(model, b);
  enc.Flush();

  // 5% entropy is ~0.29 bits/symbol; adaptive coding should get below 0.5.
  EXPECT_LT(buf.size() * 8, bits.size() / 2);

  RangeDecoder dec(buf);
  BitModel model2;
  for (const int b : bits) EXPECT_EQ(dec.DecodeBit(model2), b);
}

TEST(RangeCoder, DirectBitsRoundTrip) {
  std::mt19937_64 rng(3);
  std::vector<std::pair<std::uint32_t, int>> items;
  std::vector<std::uint8_t> buf;
  RangeEncoder enc(&buf);
  for (int i = 0; i < 1000; ++i) {
    const int n = static_cast<int>(rng() % 32) + 1;
    const std::uint32_t v = static_cast<std::uint32_t>(rng()) & ((n == 32) ? ~0u : ((1u << n) - 1));
    items.emplace_back(v, n);
    enc.EncodeDirectBits(v, n);
  }
  enc.Flush();
  RangeDecoder dec(buf);
  for (const auto& [v, n] : items) EXPECT_EQ(dec.DecodeDirectBits(n), v);
}

TEST(RangeCoder, BitTreeRoundTrip) {
  std::mt19937_64 rng(9);
  std::vector<std::uint32_t> symbols;
  std::vector<std::uint8_t> buf;
  RangeEncoder enc(&buf);
  BitTree<8> tree;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t s = rng() % 256;
    symbols.push_back(s);
    tree.Encode(enc, s);
  }
  enc.Flush();
  RangeDecoder dec(buf);
  BitTree<8> tree2;
  for (const std::uint32_t s : symbols) EXPECT_EQ(tree2.Decode(dec), s);
}

TEST(RangeCoder, SignedValueCoderRoundTrip) {
  std::mt19937_64 rng(11);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 3000; ++i) {
    const int mag = static_cast<int>(rng() % 20);
    std::int64_t v = static_cast<std::int64_t>(rng() & ((1ull << mag) - 1));
    if (rng() & 1) v = -v;
    values.push_back(v);
  }
  std::vector<std::uint8_t> buf;
  RangeEncoder enc(&buf);
  SignedValueCoder coder;
  for (const std::int64_t v : values) coder.Encode(enc, v);
  enc.Flush();
  RangeDecoder dec(buf);
  SignedValueCoder coder2;
  for (const std::int64_t v : values) EXPECT_EQ(coder2.Decode(dec), v);
}

TEST(RangeCoder, TooShortStreamThrows) {
  const std::vector<std::uint8_t> tiny = {1, 2, 3};
  EXPECT_THROW(RangeDecoder dec(tiny), CorruptStream);
}

// --- LZ77 --------------------------------------------------------------------

TEST(Lz77, ReconstructsTokenizedData) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "the quick brown fox jumps over the lazy dog. ";
  const std::vector<std::uint8_t> data(text.begin(), text.end());
  const auto tokens = LzTokenize(data);
  EXPECT_LT(tokens.size(), data.size() / 4);  // repetitive text matches well
  EXPECT_EQ(LzReconstruct(tokens), data);
}

TEST(Lz77, OverlappingMatchHandledLikeRle) {
  const std::vector<std::uint8_t> data(500, 0x55);
  const auto tokens = LzTokenize(data);
  EXPECT_EQ(LzReconstruct(tokens), data);
}

TEST(Lz77, ShortRepetitiveInputRoundTrips) {
  // Matches that run to the end of the input exercise the interior-chain
  // insertion bound: positions inside the final kMinMatch-1 bytes have no
  // full hash window and must be skipped, not hashed past the buffer.
  for (std::size_t n = 1; n <= 32; ++n) {
    std::vector<std::uint8_t> data;
    for (std::size_t i = 0; i < n; ++i) data.push_back(static_cast<std::uint8_t>("ab"[i % 2]));
    const auto tokens = LzTokenize(data);
    EXPECT_EQ(LzReconstruct(tokens), data) << "n=" << n;
  }
}

TEST(Lz77, InteriorOfMatchIsReferenceable) {
  // "abcdefgh" twice, then a run that matches the *interior* of the earlier
  // copy ("cdef"). The covered positions of the first match must be in the
  // hash chains for the third block to find its match.
  std::string text = "abcdefgh";
  text += "abcdefgh";
  text += "cdefcdef";
  const std::vector<std::uint8_t> data(text.begin(), text.end());
  const auto tokens = LzTokenize(data);
  EXPECT_EQ(LzReconstruct(tokens), data);
  std::size_t matches = 0;
  for (const LzToken& t : tokens) matches += t.is_match ? 1 : 0;
  EXPECT_GE(matches, 2u);  // the repeat AND the interior reference
}

TEST(Lz77, InputsBelowMinMatchStayLiteral) {
  for (std::size_t n = 0; n < LzParams::kMinMatch; ++n) {
    const std::vector<std::uint8_t> data(n, 0x41);
    const auto tokens = LzTokenize(data);
    EXPECT_EQ(tokens.size(), n);
    for (const LzToken& t : tokens) EXPECT_FALSE(t.is_match);
    EXPECT_EQ(LzReconstruct(tokens), data);
  }
}

TEST(Lz77, BadDistanceThrows) {
  std::vector<LzToken> tokens;
  tokens.push_back({.is_match = true, .literal = 0, .length = 3, .distance = 7});
  EXPECT_THROW(LzReconstruct(tokens), CorruptStream);
}

// --- lzr ----------------------------------------------------------------------

class LzrRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LzrRoundTrip, RoundTripsDataKind) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::uint8_t> data;
  switch (GetParam()) {
    case 0: break;                                   // empty
    case 1: data.assign(1, 42); break;               // single byte
    case 2: data.assign(100000, 7); break;           // constant run
    case 3:                                          // random (incompressible)
      for (int i = 0; i < 50000; ++i) data.push_back(static_cast<std::uint8_t>(rng()));
      break;
    case 4:                                          // repetitive structured
      for (int i = 0; i < 20000; ++i) data.push_back(static_cast<std::uint8_t>(i % 97));
      break;
    case 5:                                          // text-like
      for (int i = 0; i < 3000; ++i) {
        const char* words[] = {"persona ", "semantic ", "telepresence ", "vision "};
        for (const char c : std::string(words[rng() % 4])) {
          data.push_back(static_cast<std::uint8_t>(c));
        }
      }
      break;
    case 6:                                          // noisy floats (keypoints)
      for (int i = 0; i < 8000; ++i) {
        const float f = 0.01f * static_cast<float>(i % 74) +
                        1e-4f * static_cast<float>(rng() % 1000);
        const auto* bytes = reinterpret_cast<const std::uint8_t*>(&f);
        data.insert(data.end(), bytes, bytes + 4);
      }
      break;
    default: break;
  }
  const auto compressed = LzrCompress(data);
  EXPECT_EQ(LzrDecompress(compressed), data);
}

INSTANTIATE_TEST_SUITE_P(DataKinds, LzrRoundTrip, ::testing::Range(0, 7));

TEST(Lzr, CompressesRepetitiveData) {
  const std::vector<std::uint8_t> data(100000, 7);
  EXPECT_LT(LzrCompressedSize(data), 1000u);
}

TEST(Lzr, RandomDataExpandsOnlySlightly) {
  std::mt19937_64 rng(5);
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 50000; ++i) data.push_back(static_cast<std::uint8_t>(rng()));
  const auto compressed = LzrCompress(data);
  EXPECT_LT(compressed.size(), data.size() * 106 / 100 + 16);
}

TEST(Lzr, BadMagicThrows) {
  const std::vector<std::uint8_t> junk = {'X', 'X', 'X', 'X', 0, 0};
  EXPECT_THROW(LzrDecompress(junk), CorruptStream);
}

TEST(Lzr, TruncatedBodyThrows) {
  std::vector<std::uint8_t> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 31);
  auto compressed = LzrCompress(data);
  compressed.resize(compressed.size() / 2);
  EXPECT_ANY_THROW(LzrDecompress(compressed));
}

// --- crc32 --------------------------------------------------------------------

TEST(Crc32, MatchesKnownVector) {
  const std::string s = "123456789";
  const std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(Crc32(data), 0xCBF43926u);  // canonical CRC-32 check value
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(100, 0xAA);
  const std::uint32_t before = Crc32(data);
  data[50] ^= 0x01;
  EXPECT_NE(Crc32(data), before);
}

}  // namespace
}  // namespace vtp::compress
