// Tests for keypoint schemas, the behavioural track generator, the semantic
// codec, and persona reconstruction.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/bitstream.h"
#include "mesh/generator.h"
#include "semantic/codec.h"
#include "semantic/generator.h"
#include "semantic/keypoints.h"
#include "semantic/reconstruct.h"

namespace vtp::semantic {
namespace {

// --- schemas -----------------------------------------------------------------

TEST(Keypoints, SemanticSubsetIs74Points) {
  // 32 mouth+eye points + 2 x 21 hand points (§4.3).
  EXPECT_EQ(kSemanticPoints, 74u);
  const auto subset = ExtractSemanticSubset(NeutralLayout());
  EXPECT_EQ(subset.size(), 74u);
}

TEST(Keypoints, DlibIndexRangesAreCorrect) {
  const auto eyes = EyeIndices();
  EXPECT_EQ(eyes.front(), 36u);
  EXPECT_EQ(eyes.back(), 47u);
  const auto mouth = MouthIndices();
  EXPECT_EQ(mouth.front(), 48u);
  EXPECT_EQ(mouth.back(), 67u);
}

TEST(Keypoints, NeutralLayoutIsFaceLike) {
  const KeypointFrame f = NeutralLayout();
  // Eyes above the mouth, on the +z face.
  const Vec3 eye = f.face[40];
  const Vec3 mouth = f.face[51];
  EXPECT_GT(eye.y, mouth.y);
  EXPECT_GT(eye.z, 0.05f);
  // Left/right eyes roughly mirrored in x.
  EXPECT_NEAR(f.face[37].x, -f.face[44].x, 0.02f);
  // Hands placed at the persona's hand offsets.
  EXPECT_LT(f.left_hand[0].x, -0.2f);
  EXPECT_GT(f.right_hand[0].x, 0.2f);
}

// --- track generator ------------------------------------------------------------

TEST(TrackGenerator, DeterministicPerSeed) {
  KeypointTrackGenerator a({}, 5), b({}, 5), c({}, 6);
  const auto fa = a.Next(), fb = b.Next(), fc = c.Next();
  EXPECT_FLOAT_EQ(fa.face[50].x, fb.face[50].x);
  EXPECT_NE(fa.face[50].x, fc.face[50].x);
}

TEST(TrackGenerator, MouthMovesWhenTalkingAndNotOtherwise) {
  TrackConfig talking;
  talking.sensor_noise_m = 0;  // isolate the articulation signal
  TrackConfig silent = talking;
  silent.talking = false;

  const auto mouth_travel = [](TrackConfig config) {
    KeypointTrackGenerator gen(config, 3);
    double travel = 0;
    KeypointFrame prev = gen.Next();
    for (int i = 0; i < 180; ++i) {
      const KeypointFrame f = gen.Next();
      travel += std::abs(f.face[57].y - prev.face[57].y);  // lower lip
      prev = f;
    }
    return travel;
  };
  EXPECT_GT(mouth_travel(talking), mouth_travel(silent) * 3);
}

TEST(TrackGenerator, BlinksCloseTheEyes) {
  TrackConfig config;
  config.sensor_noise_m = 0;
  config.blink_interval_s = 0.5;  // blink often so the test is fast
  KeypointTrackGenerator gen(config, 11);
  double min_gap = 1e9, max_gap = 0;
  for (int i = 0; i < 900; ++i) {  // 10 seconds at 90 fps
    const KeypointFrame f = gen.Next();
    // Vertical gap of the right eye loop (upper vs lower points).
    const double gap = std::abs(f.face[37].y - f.face[41].y);
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  EXPECT_LT(min_gap, max_gap * 0.35);  // eyelids nearly meet during a blink
}

TEST(TrackGenerator, HandsWanderSmoothlyAndBoundedly) {
  KeypointTrackGenerator gen({}, 17);
  double max_offset = 0, max_step = 0;
  Vec3 prev = gen.Next().left_hand[0];
  const Vec3 start = prev;
  for (int i = 0; i < 900; ++i) {
    const Vec3 now = gen.Next().left_hand[0];
    max_offset = std::max(max_offset, static_cast<double>((now - start).Length()));
    max_step = std::max(max_step, static_cast<double>((now - prev).Length()));
    prev = now;
  }
  EXPECT_GT(max_offset, 0.005);  // it does move
  EXPECT_LT(max_offset, 0.5);    // but stays near the body
  EXPECT_LT(max_step, 0.02);     // no teleporting between frames
}

// --- codec ------------------------------------------------------------------------

TEST(SemanticCodec, RawFloatRoundTripIsExact) {
  KeypointTrackGenerator gen({}, 2);
  SemanticEncoder enc({.quantize_bits = 0, .temporal_delta = false, .lz_compress = true});
  SemanticDecoder dec;
  for (int i = 0; i < 5; ++i) {
    const auto points = ExtractSemanticSubset(gen.Next());
    const auto payload = enc.EncodeFrame(points);
    const auto frame = dec.DecodeFrame(payload);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->frame_index, static_cast<std::uint64_t>(i));
    ASSERT_EQ(frame->points.size(), kSemanticPoints);
    for (std::size_t k = 0; k < kSemanticPoints; ++k) {
      EXPECT_FLOAT_EQ(frame->points[k].x, points[k].x);
      EXPECT_FLOAT_EQ(frame->points[k].y, points[k].y);
      EXPECT_FLOAT_EQ(frame->points[k].z, points[k].z);
    }
  }
}

TEST(SemanticCodec, PaperScaleBandwidth) {
  // §4.3: 74 float keypoints compressed with LZMA at 90 FPS ~ 0.64 Mbps,
  // i.e. ~880-930 bytes per frame.
  KeypointTrackGenerator gen({}, 4);
  SemanticEncoder enc;
  std::size_t total = 0;
  const int frames = 200;
  for (int i = 0; i < frames; ++i) {
    total += enc.EncodeFrame(ExtractSemanticSubset(gen.Next())).size();
  }
  const double mbps = static_cast<double>(total) * 8 * 90 / frames / 1e6;
  EXPECT_GT(mbps, 0.45);
  EXPECT_LT(mbps, 0.75);
}

class QuantizedCodec : public ::testing::TestWithParam<int> {};

TEST_P(QuantizedCodec, RoundTripWithinGridError) {
  const int bits = GetParam();
  KeypointTrackGenerator gen({}, 8);
  SemanticEncoder enc({.quantize_bits = bits, .temporal_delta = false, .lz_compress = false});
  SemanticDecoder dec;
  const float tolerance = 1.0f / static_cast<float>((1 << bits) - 1) + 1e-6f;
  for (int i = 0; i < 3; ++i) {
    const auto points = ExtractSemanticSubset(gen.Next());
    const auto frame = dec.DecodeFrame(enc.EncodeFrame(points));
    ASSERT_TRUE(frame.has_value());
    for (std::size_t k = 0; k < kSemanticPoints; ++k) {
      EXPECT_NEAR(frame->points[k].x, points[k].x, tolerance);
      EXPECT_NEAR(frame->points[k].y, points[k].y, tolerance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizedCodec, ::testing::Values(8, 10, 12, 14, 16));

TEST(SemanticCodec, QuantizedModeIsMuchSmallerThanFloatMode) {
  KeypointTrackGenerator gen_a({}, 9), gen_b({}, 9);
  SemanticEncoder float_enc;
  SemanticEncoder quant_enc({.quantize_bits = 12, .temporal_delta = true, .lz_compress = true});
  std::size_t float_bytes = 0, quant_bytes = 0;
  for (int i = 0; i < 50; ++i) {
    float_bytes += float_enc.EncodeFrame(ExtractSemanticSubset(gen_a.Next())).size();
    quant_bytes += quant_enc.EncodeFrame(ExtractSemanticSubset(gen_b.Next())).size();
  }
  // The ablation the paper's discussion implies: quantized deltas would cut
  // the spatial persona's bitrate several-fold.
  EXPECT_LT(quant_bytes * 3, float_bytes);
}

TEST(SemanticCodec, TemporalDeltaFailsWithoutPredecessor) {
  KeypointTrackGenerator gen({}, 10);
  SemanticEncoder enc({.quantize_bits = 12, .temporal_delta = true, .lz_compress = false});
  SemanticDecoder dec;
  const auto f0 = enc.EncodeFrame(ExtractSemanticSubset(gen.Next()));  // keyframe-like
  const auto f1 = enc.EncodeFrame(ExtractSemanticSubset(gen.Next()));  // delta
  const auto f2 = enc.EncodeFrame(ExtractSemanticSubset(gen.Next()));  // delta
  EXPECT_TRUE(dec.DecodeFrame(f0).has_value());
  // Skip f1: the delta chain is broken -> reconstruction impossible.
  EXPECT_FALSE(dec.DecodeFrame(f2).has_value());
}

TEST(SemanticCodec, MalformedPayloadThrows) {
  SemanticDecoder dec;
  EXPECT_THROW(dec.DecodeFrame(std::vector<std::uint8_t>{}), compress::CorruptStream);
  EXPECT_ANY_THROW(dec.DecodeFrame(std::vector<std::uint8_t>{0x04, 0x00, 'b', 'a', 'd'}));
}

TEST(SemanticCodec, WrongPointCountThrows) {
  SemanticEncoder enc;
  const std::vector<Vec3> wrong(10);
  EXPECT_THROW(enc.EncodeFrame(wrong), std::invalid_argument);
}

TEST(SemanticCodec, InvalidConfigThrows) {
  EXPECT_THROW(SemanticEncoder({.quantize_bits = 0, .temporal_delta = true}),
               std::invalid_argument);
  EXPECT_THROW(SemanticEncoder({.quantize_bits = 25}), std::invalid_argument);
}

// --- reconstruction ------------------------------------------------------------------

TEST(Reconstructor, InfluencesCoverTheAnimatedRegions) {
  const mesh::TriangleMesh persona = mesh::GeneratePersona(1, 20000);
  PersonaReconstructor recon(persona);
  EXPECT_GT(recon.influenced_vertex_count(), 100u);
  EXPECT_LT(recon.influenced_vertex_count(), persona.vertex_count());
}

TEST(Reconstructor, MouthKeypointsMoveMouthVerticesOnly) {
  const mesh::TriangleMesh persona = mesh::GeneratePersona(2, 20000);
  PersonaReconstructor recon(persona);

  // Open the mouth: push all mouth keypoints down by 1 cm.
  auto points = ExtractSemanticSubset(NeutralLayout());
  for (std::size_t k = 0; k < kMouthPoints; ++k) points[k].y -= 0.01f;
  const mesh::TriangleMesh& deformed = recon.Apply(points);

  double moved = 0, moved_far_from_face = 0;
  std::size_t count_moved = 0;
  for (std::size_t i = 0; i < persona.vertex_count(); ++i) {
    const float d = (deformed.positions[i] - persona.positions[i]).Length();
    if (d > 1e-5f) {
      ++count_moved;
      moved += d;
      if (persona.positions[i].z < 0) moved_far_from_face += d;  // back of head
    }
  }
  EXPECT_GT(count_moved, 10u);
  EXPECT_GT(moved, 0.0);
  EXPECT_NEAR(moved_far_from_face, 0.0, moved * 0.01);  // back of head is static
}

TEST(Reconstructor, NeutralInputIsIdentity) {
  const mesh::TriangleMesh persona = mesh::GeneratePersona(3, 10000);
  PersonaReconstructor recon(persona);
  const auto neutral = ExtractSemanticSubset(NeutralLayout());
  const mesh::TriangleMesh& out = recon.Apply(neutral);
  for (std::size_t i = 0; i < persona.vertex_count(); ++i) {
    EXPECT_NEAR((out.positions[i] - persona.positions[i]).Length(), 0.0f, 1e-6f);
  }
}

TEST(Reconstructor, WrongPointCountThrows) {
  PersonaReconstructor recon(mesh::GeneratePersona(4, 5000));
  EXPECT_THROW(recon.Apply(std::vector<Vec3>(3)), std::invalid_argument);
}

}  // namespace
}  // namespace vtp::semantic
