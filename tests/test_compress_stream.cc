// Tests for the streaming compression hot path: LzrEncoder / MatchFinder /
// lazy parsing / counting-sink sizes. The core contract under test is
// differential: the fused streaming encoder must be byte-identical to the
// legacy tokenize-then-encode compressor in greedy mode, and every mode must
// round-trip exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <span>
#include <vector>

#include "compress/codec_engine.h"
#include "compress/crc32.h"
#include "compress/lz77.h"
#include "compress/lzr.h"
#include "compress/lzr_stream.h"
#include "compress/match_finder.h"
#include "semantic/codec.h"
#include "semantic/generator.h"
#include "semantic/keypoints.h"

// ---- allocation counting ----------------------------------------------------
// Global counter for the zero-allocation steady-state checks. Counting only;
// all allocation behaviour is the default.
//
// GCC 12 cannot see through the replaced global operator new when it inlines
// std::vector's deallocation and flags a malloc/free "mismatch" that is in
// fact matched (both sides of the replacement use malloc/free).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vtp::compress {
namespace {

LzParams Greedy() { return {}; }

LzParams Lazy() {
  LzParams p;
  p.parser = LzParser::kLazy;
  return p;
}

// ---- corpora ----------------------------------------------------------------

std::vector<std::uint8_t> RandomCorpus(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

std::vector<std::uint8_t> RepetitiveCorpus(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  const std::vector<std::uint8_t> motif = {'t', 'e', 'l', 'e', 'p', 'r', 'e', 's'};
  std::vector<std::uint8_t> data;
  data.reserve(n);
  while (data.size() < n) {
    data.push_back(motif[data.size() % motif.size()]);
    if (rng() % 31 == 0) data.back() = static_cast<std::uint8_t>(rng());
  }
  return data;
}

/// The headline payload type: 11-bit quantized temporal-delta keypoint frames.
std::vector<std::vector<std::uint8_t>> KeypointDeltaFrames(int frames, std::uint32_t seed) {
  semantic::KeypointTrackGenerator generator({}, seed);
  semantic::SemanticEncoder encoder(
      {.quantize_bits = 11, .temporal_delta = true, .lz_compress = false});
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    out.push_back(encoder.EncodeFrame(semantic::ExtractSemanticSubset(generator.Next())));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> AllCorpora() {
  std::vector<std::vector<std::uint8_t>> corpora;
  corpora.push_back({});                                   // empty
  corpora.push_back({42});                                 // single byte
  corpora.push_back({1, 2, 3});                            // exactly kMinMatch
  corpora.push_back(RandomCorpus(4096, 1));
  corpora.push_back(RepetitiveCorpus(4096, 2));
  corpora.push_back(std::vector<std::uint8_t>(2048, 0x55));  // constant
  for (auto& f : KeypointDeltaFrames(8, 3)) corpora.push_back(std::move(f));
  return corpora;
}

// ---- differential greedy identity ------------------------------------------

TEST(LzrStream, GreedyIsByteIdenticalToLegacy) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> out;
  for (const auto& data : AllCorpora()) {
    const std::vector<std::uint8_t> legacy = LzrCompressLegacy(data, Greedy());
    out.clear();
    encoder.CompressInto(data, out, Greedy());
    EXPECT_EQ(out, legacy) << "greedy stream diverged on input of " << data.size() << " bytes";
  }
}

TEST(LzrStream, FreeFunctionWrapperMatchesEncoder) {
  LzrEncoder encoder;
  for (const auto& data : AllCorpora()) {
    EXPECT_EQ(LzrCompress(data), LzrCompressLegacy(data, Greedy()));
  }
}

// ---- lazy parsing -----------------------------------------------------------

TEST(LzrStream, LazyRoundTripsAndNeverBeatenByGreedy) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> greedy_out, lazy_out, decoded;
  for (const auto& data : AllCorpora()) {
    greedy_out.clear();
    encoder.CompressInto(data, greedy_out, Greedy());
    lazy_out.clear();
    encoder.CompressInto(data, lazy_out, Lazy());

    // One extra lookahead probe can only tighten the parse.
    EXPECT_LE(lazy_out.size(), greedy_out.size());

    LzrDecompressInto(greedy_out, decoded);
    EXPECT_EQ(decoded, data);
    LzrDecompressInto(lazy_out, decoded);
    EXPECT_EQ(decoded, data);
  }
}

TEST(LzrStream, LazyTightensRepetitiveParses) {
  // On match-rich data the lazy parser should find at least one deferral
  // that pays off; if it never does, it silently degenerated to greedy.
  LzrEncoder encoder;
  const auto data = RepetitiveCorpus(1 << 15, 17);
  const std::size_t greedy = encoder.CompressedSize(data, Greedy());
  const std::size_t lazy = encoder.CompressedSize(data, Lazy());
  EXPECT_LT(lazy, greedy);
}

TEST(LzrStream, DefaultParserFollowsEnv) {
  ASSERT_EQ(DefaultLzParser(), LzParser::kGreedy);
  ::setenv("VTP_LZ_PARSER", "lazy", 1);
  EXPECT_EQ(DefaultLzParser(), LzParser::kLazy);
  ::setenv("VTP_LZ_PARSER", "greedy", 1);
  EXPECT_EQ(DefaultLzParser(), LzParser::kGreedy);
  ::unsetenv("VTP_LZ_PARSER");
}

TEST(LzrStream, DefaultEntropyFollowsEnvAndIgnoresGarbage) {
  ASSERT_EQ(DefaultEntropyMode(), EntropyMode::kLegacy);
  ::setenv("VTP_ENTROPY", "lanes", 1);
  EXPECT_EQ(DefaultEntropyMode(), EntropyMode::kLanes);
  ::setenv("VTP_ENTROPY", "legacy", 1);
  EXPECT_EQ(DefaultEntropyMode(), EntropyMode::kLegacy);
  // Unknown values must resolve to the legacy default, not throw or
  // half-enable the new coder.
  ::setenv("VTP_ENTROPY", "rans", 1);
  EXPECT_EQ(DefaultEntropyMode(), EntropyMode::kLegacy);
  ::setenv("VTP_ENTROPY", "", 1);
  EXPECT_EQ(DefaultEntropyMode(), EntropyMode::kLegacy);
  ::unsetenv("VTP_ENTROPY");
  EXPECT_EQ(DefaultEntropyMode(), EntropyMode::kLegacy);
}

TEST(LzrStream, LegacyGoldenStreamsPinned) {
  // Hard pins of the legacy (LZR1) container: size and CRC32 of the
  // compressed stream for fixed corpora, captured from the growth seed.
  // Any change here is a wire-format break for knob-off users — the lanes
  // coder must never perturb these bytes.
  struct Golden {
    std::size_t size;
    std::uint32_t crc;
  };
  const Golden goldens[] = {
      {4161u, 0xC29D1D14u},  // RandomCorpus(4096, 1)
      {410u, 0xC78F9FFDu},   // RepetitiveCorpus(4096, 2)
      {26u, 0x79FC2AEBu},    // 2048 x 0x55
      {377u, 0xD84AEA97u},   // KeypointDeltaFrames(8, 3), frames 0..7
      {141u, 0xF82EF242u},  {139u, 0x227D9D7Du}, {140u, 0x1A98261Du}, {138u, 0x8871D356u},
      {141u, 0x63551747u},  {136u, 0x77044633u}, {146u, 0xF91613B9u},
  };
  std::vector<std::vector<std::uint8_t>> corpora;
  corpora.push_back(RandomCorpus(4096, 1));
  corpora.push_back(RepetitiveCorpus(4096, 2));
  corpora.push_back(std::vector<std::uint8_t>(2048, 0x55));
  for (auto& f : KeypointDeltaFrames(8, 3)) corpora.push_back(std::move(f));
  ASSERT_EQ(corpora.size(), std::size(goldens));
  for (std::size_t i = 0; i < corpora.size(); ++i) {
    const std::vector<std::uint8_t> stream = LzrCompress(corpora[i]);
    EXPECT_EQ(stream.size(), goldens[i].size) << "corpus " << i;
    EXPECT_EQ(Crc32(stream), goldens[i].crc) << "corpus " << i;
  }
}

// ---- match finder reuse -----------------------------------------------------

TEST(MatchFinder, ReuseAcrossInputsMatchesFreshEncoder) {
  // Generation stamping must make a warm finder indistinguishable from a
  // fresh one: stale head slots from earlier (larger, different) inputs must
  // never leak matches into later frames.
  LzrEncoder reused;
  std::vector<std::uint8_t> warm, fresh;
  // Deliberately alternate sizes and content so stale chains would point at
  // plausible-looking offsets if generations leaked.
  std::vector<std::vector<std::uint8_t>> inputs;
  inputs.push_back(RandomCorpus(8192, 11));
  inputs.push_back(RepetitiveCorpus(512, 12));
  inputs.push_back(RandomCorpus(64, 13));
  inputs.push_back(RepetitiveCorpus(8192, 14));
  inputs.push_back(RandomCorpus(512, 11));  // same seed family, shorter
  for (auto& f : KeypointDeltaFrames(6, 5)) inputs.push_back(std::move(f));

  for (const LzParams& params : {Greedy(), Lazy()}) {
    for (const auto& data : inputs) {
      warm.clear();
      reused.CompressInto(data, warm, params);
      LzrEncoder once;
      fresh.clear();
      once.CompressInto(data, fresh, params);
      EXPECT_EQ(warm, fresh) << "warm finder diverged from fresh on " << data.size() << " bytes";
    }
  }
  EXPECT_EQ(reused.finder_stats().resets, 2 * inputs.size());
}

TEST(MatchFinder, FindBestHonoursProbeAndWindowLimits) {
  // All-identical bytes build one long chain; a tiny window must stop the
  // walk at the window edge regardless of chain depth.
  const std::vector<std::uint8_t> data(1024, 7);
  MatchFinder finder;
  finder.Reset(data);
  for (std::size_t i = 0; i < 512; ++i) finder.Insert(i);
  LzParams params;
  params.window_size = 16;
  const auto m = finder.FindBest(512, params);
  ASSERT_GE(m.length, LzParams::kMinMatch);
  EXPECT_LE(m.distance, params.window_size);
}

// ---- counting-sink sizes ----------------------------------------------------

TEST(LzrStream, CompressedSizeIsExact) {
  LzrEncoder encoder;
  for (const auto& data : AllCorpora()) {
    for (const LzParams& params : {Greedy(), Lazy()}) {
      const std::size_t predicted = encoder.CompressedSize(data, params);
      EXPECT_EQ(predicted, encoder.Compress(data, params).size());
    }
  }
}

TEST(LzrStream, LzrCompressedSizeMatchesWrapper) {
  const auto data = RepetitiveCorpus(4096, 23);
  EXPECT_EQ(LzrCompressedSize(data), LzrCompress(data).size());
}

// ---- steady-state allocations ----------------------------------------------

TEST(LzrStream, SteadyStateEncodeDoesNotAllocate) {
  const auto frames = KeypointDeltaFrames(32, 9);
  LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  for (const auto& f : frames) {  // warm arena, scratch, output, decode buffer
    out.clear();
    encoder.CompressInto(f, out);
    LzrDecompressInto(out, decoded);
  }

  const std::uint64_t allocs_before = g_allocs.load();
  const std::uint64_t grows_before = encoder.finder_stats().arena_grows;
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& f : frames) {
      out.clear();
      encoder.CompressInto(f, out);
      LzrDecompressInto(out, decoded);
    }
  }
  EXPECT_EQ(g_allocs.load() - allocs_before, 0u) << "warm encode+decode touched the heap";
  EXPECT_EQ(encoder.finder_stats().arena_grows, grows_before) << "arena grew after warm-up";
}

TEST(LzrStream, SteadyStateFrameEncodeDoesNotAllocate) {
  semantic::KeypointTrackGenerator generator({}, 9);
  semantic::SemanticEncoder encoder({.quantize_bits = 11, .temporal_delta = true});
  std::vector<std::vector<semantic::Vec3>> subsets;  // pre-generated input
  for (int i = 0; i < 32; ++i) {
    subsets.push_back(semantic::ExtractSemanticSubset(generator.Next()));
  }
  std::vector<std::uint8_t> payload;
  for (const auto& s : subsets) encoder.EncodeFrameInto(s, payload);  // warm

  const std::uint64_t before = g_allocs.load();
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& s : subsets) encoder.EncodeFrameInto(s, payload);
  }
  EXPECT_EQ(g_allocs.load() - before, 0u) << "warm EncodeFrameInto touched the heap";
}

TEST(LzrStream, LanesSteadyStateEncodeDoesNotAllocate) {
  // The zero-allocation discipline must hold in lanes mode too: records,
  // the reversal scratch, and the decoder all reuse warm buffers.
  LzParams lanes;
  lanes.entropy = EntropyMode::kLanes;
  const auto frames = KeypointDeltaFrames(32, 9);
  LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  for (const auto& f : frames) {
    out.clear();
    encoder.CompressInto(f, out, lanes);
    LzrDecompressInto(out, decoded);
  }

  const std::uint64_t allocs_before = g_allocs.load();
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& f : frames) {
      out.clear();
      encoder.CompressInto(f, out, lanes);
      LzrDecompressInto(out, decoded);
    }
  }
  EXPECT_EQ(g_allocs.load() - allocs_before, 0u) << "warm lanes encode+decode touched the heap";
}

// ---- shared engine / batch front-end ---------------------------------------

TEST(CodecEngine, SharedEngineBytesMatchStandaloneEncoders) {
  // Three personas through one engine must produce exactly the bytes three
  // embedded encoders would (generation-stamped arena, no cross-talk).
  CodecEngine engine;
  semantic::SemanticBatchEncoder batch(engine);
  std::vector<semantic::SemanticEncoder> standalone;
  const semantic::SemanticCodecConfig config{.quantize_bits = 11, .temporal_delta = true};
  for (int p = 0; p < 3; ++p) {
    batch.AddStream(config);
    standalone.emplace_back(config);
  }

  std::vector<semantic::KeypointTrackGenerator> gens;
  for (int p = 0; p < 3; ++p) gens.emplace_back(semantic::TrackConfig{}, 40 + p);

  std::vector<std::vector<std::uint8_t>> outputs;
  std::vector<std::uint8_t> expected;
  for (int i = 0; i < 16; ++i) {
    std::vector<std::vector<semantic::Vec3>> subsets;
    std::vector<std::span<const semantic::Vec3>> views;
    for (int p = 0; p < 3; ++p) {
      subsets.push_back(semantic::ExtractSemanticSubset(gens[p].Next()));
      views.emplace_back(subsets.back());
    }
    batch.EncodeBatch(views, outputs);
    for (int p = 0; p < 3; ++p) {
      standalone[p].EncodeFrameInto(subsets[p], expected);
      EXPECT_EQ(outputs[p], expected) << "frame " << i << " persona " << p;
    }
  }
  EXPECT_EQ(engine.stats().frames, 3u * 16u);
  EXPECT_EQ(engine.stats().batches, 16u);
  EXPECT_GT(engine.stats().bytes_in, 0u);
  EXPECT_GT(engine.stats().bytes_out, 0u);
}

TEST(CodecEngine, BatchSteadyStateDoesNotAllocate) {
  CodecEngine engine;
  semantic::SemanticBatchEncoder batch(engine);
  for (int p = 0; p < 4; ++p) {
    batch.AddStream({.quantize_bits = 11, .temporal_delta = true});
  }
  std::vector<std::vector<std::vector<semantic::Vec3>>> inputs;  // [frame][persona]
  std::vector<semantic::KeypointTrackGenerator> gens;
  for (int p = 0; p < 4; ++p) gens.emplace_back(semantic::TrackConfig{}, 50 + p);
  for (int i = 0; i < 24; ++i) {
    inputs.emplace_back();
    for (int p = 0; p < 4; ++p) {
      inputs.back().push_back(semantic::ExtractSemanticSubset(gens[p].Next()));
    }
  }
  std::vector<std::span<const semantic::Vec3>> views(4);
  std::vector<std::vector<std::uint8_t>> outputs;
  for (const auto& frame : inputs) {  // warm
    for (int p = 0; p < 4; ++p) views[static_cast<std::size_t>(p)] = frame[p];
    batch.EncodeBatch(views, outputs);
  }

  const std::uint64_t before = g_allocs.load();
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& frame : inputs) {
      for (int p = 0; p < 4; ++p) views[static_cast<std::size_t>(p)] = frame[p];
      batch.EncodeBatch(views, outputs);
    }
  }
  EXPECT_EQ(g_allocs.load() - before, 0u) << "warm EncodeBatch touched the heap";
}

// ---- decode buffer reuse ----------------------------------------------------

TEST(LzrStream, DecompressIntoReusesBuffer) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  const auto big = RepetitiveCorpus(1 << 14, 31);
  encoder.CompressInto(big, out);
  LzrDecompressInto(out, decoded);
  EXPECT_EQ(decoded, big);
  const std::size_t cap = decoded.capacity();

  const auto small = RandomCorpus(64, 32);
  out.clear();
  encoder.CompressInto(small, out);
  LzrDecompressInto(out, decoded);
  EXPECT_EQ(decoded, small);
  EXPECT_EQ(decoded.capacity(), cap) << "shrinking decode should reuse capacity";
}

}  // namespace
}  // namespace vtp::compress
