// Tests for the streaming compression hot path: LzrEncoder / MatchFinder /
// lazy parsing / counting-sink sizes. The core contract under test is
// differential: the fused streaming encoder must be byte-identical to the
// legacy tokenize-then-encode compressor in greedy mode, and every mode must
// round-trip exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "compress/lz77.h"
#include "compress/lzr.h"
#include "compress/lzr_stream.h"
#include "compress/match_finder.h"
#include "semantic/codec.h"
#include "semantic/generator.h"
#include "semantic/keypoints.h"

// ---- allocation counting ----------------------------------------------------
// Global counter for the zero-allocation steady-state checks. Counting only;
// all allocation behaviour is the default.
//
// GCC 12 cannot see through the replaced global operator new when it inlines
// std::vector's deallocation and flags a malloc/free "mismatch" that is in
// fact matched (both sides of the replacement use malloc/free).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vtp::compress {
namespace {

LzParams Greedy() { return {}; }

LzParams Lazy() {
  LzParams p;
  p.parser = LzParser::kLazy;
  return p;
}

// ---- corpora ----------------------------------------------------------------

std::vector<std::uint8_t> RandomCorpus(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

std::vector<std::uint8_t> RepetitiveCorpus(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  const std::vector<std::uint8_t> motif = {'t', 'e', 'l', 'e', 'p', 'r', 'e', 's'};
  std::vector<std::uint8_t> data;
  data.reserve(n);
  while (data.size() < n) {
    data.push_back(motif[data.size() % motif.size()]);
    if (rng() % 31 == 0) data.back() = static_cast<std::uint8_t>(rng());
  }
  return data;
}

/// The headline payload type: 11-bit quantized temporal-delta keypoint frames.
std::vector<std::vector<std::uint8_t>> KeypointDeltaFrames(int frames, std::uint32_t seed) {
  semantic::KeypointTrackGenerator generator({}, seed);
  semantic::SemanticEncoder encoder(
      {.quantize_bits = 11, .temporal_delta = true, .lz_compress = false});
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    out.push_back(encoder.EncodeFrame(semantic::ExtractSemanticSubset(generator.Next())));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> AllCorpora() {
  std::vector<std::vector<std::uint8_t>> corpora;
  corpora.push_back({});                                   // empty
  corpora.push_back({42});                                 // single byte
  corpora.push_back({1, 2, 3});                            // exactly kMinMatch
  corpora.push_back(RandomCorpus(4096, 1));
  corpora.push_back(RepetitiveCorpus(4096, 2));
  corpora.push_back(std::vector<std::uint8_t>(2048, 0x55));  // constant
  for (auto& f : KeypointDeltaFrames(8, 3)) corpora.push_back(std::move(f));
  return corpora;
}

// ---- differential greedy identity ------------------------------------------

TEST(LzrStream, GreedyIsByteIdenticalToLegacy) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> out;
  for (const auto& data : AllCorpora()) {
    const std::vector<std::uint8_t> legacy = LzrCompressLegacy(data, Greedy());
    out.clear();
    encoder.CompressInto(data, out, Greedy());
    EXPECT_EQ(out, legacy) << "greedy stream diverged on input of " << data.size() << " bytes";
  }
}

TEST(LzrStream, FreeFunctionWrapperMatchesEncoder) {
  LzrEncoder encoder;
  for (const auto& data : AllCorpora()) {
    EXPECT_EQ(LzrCompress(data), LzrCompressLegacy(data, Greedy()));
  }
}

// ---- lazy parsing -----------------------------------------------------------

TEST(LzrStream, LazyRoundTripsAndNeverBeatenByGreedy) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> greedy_out, lazy_out, decoded;
  for (const auto& data : AllCorpora()) {
    greedy_out.clear();
    encoder.CompressInto(data, greedy_out, Greedy());
    lazy_out.clear();
    encoder.CompressInto(data, lazy_out, Lazy());

    // One extra lookahead probe can only tighten the parse.
    EXPECT_LE(lazy_out.size(), greedy_out.size());

    LzrDecompressInto(greedy_out, decoded);
    EXPECT_EQ(decoded, data);
    LzrDecompressInto(lazy_out, decoded);
    EXPECT_EQ(decoded, data);
  }
}

TEST(LzrStream, LazyTightensRepetitiveParses) {
  // On match-rich data the lazy parser should find at least one deferral
  // that pays off; if it never does, it silently degenerated to greedy.
  LzrEncoder encoder;
  const auto data = RepetitiveCorpus(1 << 15, 17);
  const std::size_t greedy = encoder.CompressedSize(data, Greedy());
  const std::size_t lazy = encoder.CompressedSize(data, Lazy());
  EXPECT_LT(lazy, greedy);
}

TEST(LzrStream, DefaultParserFollowsEnv) {
  ASSERT_EQ(DefaultLzParser(), LzParser::kGreedy);
  ::setenv("VTP_LZ_PARSER", "lazy", 1);
  EXPECT_EQ(DefaultLzParser(), LzParser::kLazy);
  ::setenv("VTP_LZ_PARSER", "greedy", 1);
  EXPECT_EQ(DefaultLzParser(), LzParser::kGreedy);
  ::unsetenv("VTP_LZ_PARSER");
}

// ---- match finder reuse -----------------------------------------------------

TEST(MatchFinder, ReuseAcrossInputsMatchesFreshEncoder) {
  // Generation stamping must make a warm finder indistinguishable from a
  // fresh one: stale head slots from earlier (larger, different) inputs must
  // never leak matches into later frames.
  LzrEncoder reused;
  std::vector<std::uint8_t> warm, fresh;
  // Deliberately alternate sizes and content so stale chains would point at
  // plausible-looking offsets if generations leaked.
  std::vector<std::vector<std::uint8_t>> inputs;
  inputs.push_back(RandomCorpus(8192, 11));
  inputs.push_back(RepetitiveCorpus(512, 12));
  inputs.push_back(RandomCorpus(64, 13));
  inputs.push_back(RepetitiveCorpus(8192, 14));
  inputs.push_back(RandomCorpus(512, 11));  // same seed family, shorter
  for (auto& f : KeypointDeltaFrames(6, 5)) inputs.push_back(std::move(f));

  for (const LzParams& params : {Greedy(), Lazy()}) {
    for (const auto& data : inputs) {
      warm.clear();
      reused.CompressInto(data, warm, params);
      LzrEncoder once;
      fresh.clear();
      once.CompressInto(data, fresh, params);
      EXPECT_EQ(warm, fresh) << "warm finder diverged from fresh on " << data.size() << " bytes";
    }
  }
  EXPECT_EQ(reused.finder_stats().resets, 2 * inputs.size());
}

TEST(MatchFinder, FindBestHonoursProbeAndWindowLimits) {
  // All-identical bytes build one long chain; a tiny window must stop the
  // walk at the window edge regardless of chain depth.
  const std::vector<std::uint8_t> data(1024, 7);
  MatchFinder finder;
  finder.Reset(data);
  for (std::size_t i = 0; i < 512; ++i) finder.Insert(i);
  LzParams params;
  params.window_size = 16;
  const auto m = finder.FindBest(512, params);
  ASSERT_GE(m.length, LzParams::kMinMatch);
  EXPECT_LE(m.distance, params.window_size);
}

// ---- counting-sink sizes ----------------------------------------------------

TEST(LzrStream, CompressedSizeIsExact) {
  LzrEncoder encoder;
  for (const auto& data : AllCorpora()) {
    for (const LzParams& params : {Greedy(), Lazy()}) {
      const std::size_t predicted = encoder.CompressedSize(data, params);
      EXPECT_EQ(predicted, encoder.Compress(data, params).size());
    }
  }
}

TEST(LzrStream, LzrCompressedSizeMatchesWrapper) {
  const auto data = RepetitiveCorpus(4096, 23);
  EXPECT_EQ(LzrCompressedSize(data), LzrCompress(data).size());
}

// ---- steady-state allocations ----------------------------------------------

TEST(LzrStream, SteadyStateEncodeDoesNotAllocate) {
  const auto frames = KeypointDeltaFrames(32, 9);
  LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  for (const auto& f : frames) {  // warm arena, scratch, output, decode buffer
    out.clear();
    encoder.CompressInto(f, out);
    LzrDecompressInto(out, decoded);
  }

  const std::uint64_t allocs_before = g_allocs.load();
  const std::uint64_t grows_before = encoder.finder_stats().arena_grows;
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& f : frames) {
      out.clear();
      encoder.CompressInto(f, out);
      LzrDecompressInto(out, decoded);
    }
  }
  EXPECT_EQ(g_allocs.load() - allocs_before, 0u) << "warm encode+decode touched the heap";
  EXPECT_EQ(encoder.finder_stats().arena_grows, grows_before) << "arena grew after warm-up";
}

TEST(LzrStream, SteadyStateFrameEncodeDoesNotAllocate) {
  semantic::KeypointTrackGenerator generator({}, 9);
  semantic::SemanticEncoder encoder({.quantize_bits = 11, .temporal_delta = true});
  std::vector<std::vector<semantic::Vec3>> subsets;  // pre-generated input
  for (int i = 0; i < 32; ++i) {
    subsets.push_back(semantic::ExtractSemanticSubset(generator.Next()));
  }
  std::vector<std::uint8_t> payload;
  for (const auto& s : subsets) encoder.EncodeFrameInto(s, payload);  // warm

  const std::uint64_t before = g_allocs.load();
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& s : subsets) encoder.EncodeFrameInto(s, payload);
  }
  EXPECT_EQ(g_allocs.load() - before, 0u) << "warm EncodeFrameInto touched the heap";
}

// ---- decode buffer reuse ----------------------------------------------------

TEST(LzrStream, DecompressIntoReusesBuffer) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  const auto big = RepetitiveCorpus(1 << 14, 31);
  encoder.CompressInto(big, out);
  LzrDecompressInto(out, decoded);
  EXPECT_EQ(decoded, big);
  const std::size_t cap = decoded.capacity();

  const auto small = RandomCorpus(64, 32);
  out.clear();
  encoder.CompressInto(small, out);
  LzrDecompressInto(out, decoded);
  EXPECT_EQ(decoded, small);
  EXPECT_EQ(decoded.capacity(), cap) << "shrinking decode should reuse capacity";
}

}  // namespace
}  // namespace vtp::compress
