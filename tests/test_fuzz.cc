// Robustness "fuzz" tests: every decoder in the repository must survive
// arbitrary bytes — either by throwing compress::CorruptStream (or another
// typed error) or by returning a failure value. Nothing may crash, hang,
// or allocate unboundedly. Inputs are seeded pseudo-random so failures
// reproduce.
#include <gtest/gtest.h>

#include <random>

#include "audio/codec.h"
#include "compress/lzr.h"
#include "mesh/codec.h"
#include "mesh/generator.h"
#include "netsim/network.h"
#include "semantic/codec.h"
#include "transport/fec.h"
#include "transport/quic.h"
#include "transport/rtp.h"
#include "video/codec.h"

namespace vtp {
namespace {

std::vector<std::uint8_t> RandomBytes(std::mt19937_64& rng, std::size_t max_len) {
  std::vector<std::uint8_t> data(rng() % max_len);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

/// Random bytes that start with a valid-looking magic/header, which reach
/// deeper code paths than pure noise.
std::vector<std::uint8_t> RandomWithPrefix(std::mt19937_64& rng, std::size_t max_len,
                                           std::initializer_list<std::uint8_t> prefix) {
  auto data = RandomBytes(rng, max_len);
  std::size_t i = 0;
  for (const std::uint8_t b : prefix) {
    if (i < data.size()) data[i++] = b;
  }
  return data;
}

template <typename Fn>
void ExpectNoCrash(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception&) {
    // Typed failure: acceptable.
  }
}

constexpr int kRounds = 300;

TEST(Fuzz, LzrDecompressNeverCrashes) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { compress::LzrDecompress(RandomBytes(rng, 512)); });
    ExpectNoCrash([&] {
      compress::LzrDecompress(RandomWithPrefix(rng, 512, {'L', 'Z', 'R', '1'}));
    });
  }
}

TEST(Fuzz, MeshDecodeNeverCrashes) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { mesh::DecodeMesh(RandomBytes(rng, 512)); });
    ExpectNoCrash([&] {
      mesh::DecodeMesh(RandomWithPrefix(rng, 512, {'V', 'M', 'C', '1', 14}));
    });
  }
}

TEST(Fuzz, TruncatedValidMeshNeverCrashes) {
  const auto encoded = mesh::EncodeMesh(mesh::GenerateHead(3000, 1));
  std::mt19937_64 rng(3);
  for (int i = 0; i < 60; ++i) {
    auto cut = encoded;
    cut.resize(rng() % cut.size());
    ExpectNoCrash([&] { mesh::DecodeMesh(cut); });
    // Single-byte corruption of a valid stream.
    auto flipped = encoded;
    flipped[rng() % flipped.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    ExpectNoCrash([&] { mesh::DecodeMesh(flipped); });
  }
}

TEST(Fuzz, SemanticDecodeNeverCrashes) {
  std::mt19937_64 rng(4);
  semantic::SemanticDecoder decoder;
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { decoder.DecodeFrame(RandomBytes(rng, 1200)); });
  }
}

TEST(Fuzz, VideoDecodeNeverCrashes) {
  std::mt19937_64 rng(5);
  video::VideoDecoder decoder({160, 96});
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { decoder.Decode(RandomBytes(rng, 2048)); });
    // Plausible header (P flag off, sane qp, matching dims as varints).
    ExpectNoCrash([&] {
      decoder.Decode(RandomWithPrefix(rng, 2048, {1, 20, 160, 1, 96}));
    });
  }
}

TEST(Fuzz, AudioDecodeNeverCrashes) {
  std::mt19937_64 rng(6);
  audio::AudioDecoder decoder;
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { decoder.DecodeFrame(RandomBytes(rng, 600)); });
    ExpectNoCrash([&] { decoder.DecodeFrame(RandomWithPrefix(rng, 600, {0, 5})); });
  }
}

TEST(Fuzz, RtpParseNeverCrashes) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < kRounds; ++i) {
    const auto data = RandomBytes(rng, 64);
    ExpectNoCrash([&] { transport::RtpHeader::Parse(data); });
    ExpectNoCrash([&] { transport::RtcpReceiverReport::Parse(data); });
  }
}

TEST(Fuzz, FecDecoderNeverCrashes) {
  std::mt19937_64 rng(8);
  transport::FecDecoder decoder([](std::span<const std::uint8_t>) {});
  for (int i = 0; i < kRounds; ++i) {
    decoder.OnDatagram(RandomBytes(rng, 256));
    decoder.OnDatagram(RandomWithPrefix(rng, 256, {0x00, 1, 0, 4}));
    decoder.OnDatagram(RandomWithPrefix(rng, 256, {0x01, 1, 4, 4}));
  }
  SUCCEED();
}

TEST(Fuzz, QuicEndpointSurvivesGarbagePackets) {
  net::Simulator sim(9);
  net::Network network(&sim);
  network.BuildBackbone();
  const auto attacker = network.AddHost("x", "Chicago");
  const auto victim = network.AddHost("v", "NewYork");
  network.ComputeRoutes();
  transport::QuicEndpoint server(&network, victim, 4433);
  server.set_on_accept([](transport::QuicConnection*) {});

  std::mt19937_64 rng(10);
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(rng, 300);
    if (garbage.empty()) garbage.push_back(0);
    // Bias some packets toward valid-looking long/short headers.
    if (i % 3 == 0) garbage[0] = 0xC0;
    if (i % 3 == 1) garbage[0] = 0x40;
    network.SendUdp(attacker, 1000, victim, 4433, std::move(garbage));
  }
  sim.RunUntil(net::Seconds(5));
  SUCCEED();  // no crash, no hang
}

TEST(Fuzz, RtpReceiverSurvivesGarbage) {
  net::Simulator sim(11);
  net::Network network(&sim);
  network.BuildBackbone();
  const auto a = network.AddHost("a", "Chicago");
  const auto b = network.AddHost("b", "Dallas");
  network.ComputeRoutes();
  int frames = 0;
  transport::RtpReceiver receiver(
      &network, b, 6000,
      [&](std::uint32_t, std::vector<std::uint8_t>, std::uint32_t, net::SimTime) {
        ++frames;
      });
  std::mt19937_64 rng(12);
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(rng, 200);
    if (!garbage.empty() && i % 2 == 0) garbage[0] = 0x80;  // RTP-looking
    network.SendUdp(a, 1000, b, 6000, std::move(garbage));
  }
  sim.RunUntil(net::Seconds(5));
  SUCCEED();
}

}  // namespace
}  // namespace vtp
