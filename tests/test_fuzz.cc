// Robustness "fuzz" tests: every decoder in the repository must survive
// arbitrary bytes — either by throwing compress::CorruptStream (or another
// typed error) or by returning a failure value. Nothing may crash, hang,
// or allocate unboundedly. Inputs are seeded pseudo-random so failures
// reproduce.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

#include "audio/codec.h"
#include "compress/lzr.h"
#include "compress/varint.h"
#include "mesh/codec.h"
#include "mesh/generator.h"
#include "netsim/network.h"
#include "semantic/codec.h"
#include "transport/fec.h"
#include "transport/quic.h"
#include "transport/rtp.h"
#include "video/codec.h"

namespace vtp {
namespace {

std::vector<std::uint8_t> RandomBytes(std::mt19937_64& rng, std::size_t max_len) {
  std::vector<std::uint8_t> data(rng() % max_len);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

/// Random bytes that start with a valid-looking magic/header, which reach
/// deeper code paths than pure noise.
std::vector<std::uint8_t> RandomWithPrefix(std::mt19937_64& rng, std::size_t max_len,
                                           std::initializer_list<std::uint8_t> prefix) {
  auto data = RandomBytes(rng, max_len);
  std::size_t i = 0;
  for (const std::uint8_t b : prefix) {
    if (i < data.size()) data[i++] = b;
  }
  return data;
}

template <typename Fn>
void ExpectNoCrash(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception&) {
    // Typed failure: acceptable.
  }
}

constexpr int kRounds = 300;

TEST(Fuzz, LzrDecompressNeverCrashes) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { compress::LzrDecompress(RandomBytes(rng, 512)); });
    ExpectNoCrash([&] {
      compress::LzrDecompress(RandomWithPrefix(rng, 512, {'L', 'Z', 'R', '1'}));
    });
  }
}

// The lzr decoder fast path sizes its output vector once from the header and
// block-copies matches, so corrupt headers and corrupt token streams must be
// caught by the plausibility bound and the per-match distance/overrun checks
// — CorruptStream, never UB or a huge allocation.

TEST(Fuzz, LzrTruncatedValidStreamNeverCrashes) {
  // Overlap-heavy input: its stream decodes into long (often distance-1)
  // matches, so truncation tends to hit mid-match and mid-preamble cases.
  std::vector<std::uint8_t> data(2048, 0xAB);
  std::mt19937_64 rng(21);
  for (std::size_t i = 64; i < data.size(); i += 1 + rng() % 7) {
    data[i] = static_cast<std::uint8_t>(rng());
  }
  const auto stream = compress::LzrCompress(data);
  std::vector<std::uint8_t> out;
  for (std::size_t len = 0; len < stream.size(); ++len) {
    auto cut = stream;
    cut.resize(len);
    ExpectNoCrash([&] {
      compress::LzrDecompressInto(cut, out);
      // A truncated range-coder tail reads as zeros and may "decode" garbage,
      // but the output may never outgrow the header's original size.
      EXPECT_LE(out.size(), data.size());
    });
  }
}

TEST(Fuzz, LzrImplausibleSizeHeaderThrows) {
  // "LZR1" + a huge uleb128 original size. The decoder must reject it from
  // the plausibility bound instead of resizing to petabytes.
  for (const std::uint64_t claimed :
       {std::uint64_t{1} << 30, std::uint64_t{1} << 40, std::uint64_t{1} << 62}) {
    std::vector<std::uint8_t> evil = {'L', 'Z', 'R', '1'};
    compress::PutUleb128(evil, claimed);
    evil.insert(evil.end(), 16, 0x5A);  // plausible-looking coded tail
    EXPECT_THROW(compress::LzrDecompress(evil), compress::CorruptStream);
  }
}

TEST(Fuzz, LzrBitFlippedStreamNeverCrashes) {
  // Single-byte corruptions of valid overlap-heavy streams: decoded matches
  // get wrong lengths/distances, which must hit the distance/overrun checks
  // or decode to bounded garbage — never out-of-bounds copies.
  std::mt19937_64 rng(22);
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 4096; ++i) {
    data.push_back(static_cast<std::uint8_t>(i % 17 == 0 ? rng() : 0x42));
  }
  const auto stream = compress::LzrCompress(data);
  // A flip in the size header may claim a larger-but-plausible output; the
  // decoder's own bound is the hard ceiling on what it will materialize.
  const std::uint64_t plausible_limit = static_cast<std::uint64_t>(stream.size()) * 16384 + 4096;
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 400; ++i) {
    auto flipped = stream;
    flipped[rng() % flipped.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    ExpectNoCrash([&] {
      compress::LzrDecompressInto(flipped, out);
      EXPECT_LE(out.size(), plausible_limit);
    });
  }
}

TEST(Fuzz, MeshDecodeNeverCrashes) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { mesh::DecodeMesh(RandomBytes(rng, 512)); });
    ExpectNoCrash([&] {
      mesh::DecodeMesh(RandomWithPrefix(rng, 512, {'V', 'M', 'C', '1', 14}));
    });
  }
}

TEST(Fuzz, TruncatedValidMeshNeverCrashes) {
  const auto encoded = mesh::EncodeMesh(mesh::GenerateHead(3000, 1));
  std::mt19937_64 rng(3);
  for (int i = 0; i < 60; ++i) {
    auto cut = encoded;
    cut.resize(rng() % cut.size());
    ExpectNoCrash([&] { mesh::DecodeMesh(cut); });
    // Single-byte corruption of a valid stream.
    auto flipped = encoded;
    flipped[rng() % flipped.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    ExpectNoCrash([&] { mesh::DecodeMesh(flipped); });
  }
}

TEST(Fuzz, SemanticDecodeNeverCrashes) {
  std::mt19937_64 rng(4);
  semantic::SemanticDecoder decoder;
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { decoder.DecodeFrame(RandomBytes(rng, 1200)); });
  }
}

TEST(Fuzz, VideoDecodeNeverCrashes) {
  std::mt19937_64 rng(5);
  video::VideoDecoder decoder({160, 96});
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { decoder.Decode(RandomBytes(rng, 2048)); });
    // Plausible header (P flag off, sane qp, matching dims as varints).
    ExpectNoCrash([&] {
      decoder.Decode(RandomWithPrefix(rng, 2048, {1, 20, 160, 1, 96}));
    });
  }
}

TEST(Fuzz, AudioDecodeNeverCrashes) {
  std::mt19937_64 rng(6);
  audio::AudioDecoder decoder;
  for (int i = 0; i < kRounds; ++i) {
    ExpectNoCrash([&] { decoder.DecodeFrame(RandomBytes(rng, 600)); });
    ExpectNoCrash([&] { decoder.DecodeFrame(RandomWithPrefix(rng, 600, {0, 5})); });
  }
}

TEST(Fuzz, RtpParseNeverCrashes) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < kRounds; ++i) {
    const auto data = RandomBytes(rng, 64);
    ExpectNoCrash([&] { transport::RtpHeader::Parse(data); });
    ExpectNoCrash([&] { transport::RtcpReceiverReport::Parse(data); });
  }
}

TEST(Fuzz, FecDecoderNeverCrashes) {
  std::mt19937_64 rng(8);
  transport::FecDecoder decoder([](std::span<const std::uint8_t>) {});
  for (int i = 0; i < kRounds; ++i) {
    decoder.OnDatagram(RandomBytes(rng, 256));
    decoder.OnDatagram(RandomWithPrefix(rng, 256, {0x00, 1, 0, 4}));
    decoder.OnDatagram(RandomWithPrefix(rng, 256, {0x01, 1, 4, 4}));
  }
  SUCCEED();
}

// Valid repair packets, then damaged: truncated at every length and
// bit-flipped at random positions. The decoder must neither crash nor let a
// corrupt parity frame damage sources that arrived intact.
TEST(Fuzz, FecCorruptRepairPacketsNeverCrashOrCorruptSources) {
  std::mt19937_64 rng(9);
  for (int round = 0; round < 60; ++round) {
    transport::FecEncoder encoder(3);
    std::vector<std::vector<std::uint8_t>> sources;   // original payloads
    std::vector<std::vector<std::uint8_t>> parities;  // valid repair frames
    std::vector<std::vector<std::uint8_t>> framed_sources;
    for (int i = 0; i < 9; ++i) {
      std::vector<std::uint8_t> payload(20 + rng() % 200);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
      sources.push_back(payload);
      for (auto& f : encoder.Protect(payload)) {
        (f[0] == 0x01 ? parities : framed_sources).push_back(std::move(f));
      }
    }
    ASSERT_EQ(parities.size(), 3u);

    std::vector<std::vector<std::uint8_t>> delivered;
    transport::FecDecoder decoder([&](std::span<const std::uint8_t> p) {
      delivered.emplace_back(p.begin(), p.end());
    });
    for (const auto& f : framed_sources) decoder.OnDatagram(f);
    for (const auto& parity : parities) {
      // Truncations of a valid repair frame, including the empty one.
      for (std::size_t len = 0; len < parity.size(); len += 1 + rng() % 7) {
        ExpectNoCrash(
            [&] { decoder.OnDatagram(std::span(parity.data(), len)); });
      }
      // Bit flips anywhere in the frame (header or XOR payload).
      for (int flips = 0; flips < 8; ++flips) {
        auto corrupt = parity;
        corrupt[rng() % corrupt.size()] ^=
            static_cast<std::uint8_t>(1u << (rng() % 8));
        ExpectNoCrash([&] { decoder.OnDatagram(corrupt); });
      }
    }
    // Every intact source was delivered exactly once with its exact bytes,
    // no matter what the damaged repair frames claimed.
    ASSERT_GE(delivered.size(), sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(delivered[i], sources[i]);
    }
  }
}

// A truncated parity that still parses as a frame header must not be used
// to "recover" a wrong payload for a genuinely missing source.
TEST(Fuzz, FecTruncatedRepairNeverFabricatesARecovery) {
  std::mt19937_64 rng(10);
  for (int round = 0; round < 60; ++round) {
    transport::FecEncoder encoder(4);
    std::vector<std::vector<std::uint8_t>> framed;
    std::vector<std::vector<std::uint8_t>> sources;
    for (int i = 0; i < 4; ++i) {
      std::vector<std::uint8_t> payload(30 + rng() % 100);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
      sources.push_back(payload);
      for (auto& f : encoder.Protect(payload)) framed.push_back(std::move(f));
    }
    ASSERT_EQ(framed.size(), 5u);

    const std::size_t dropped = rng() % 4;  // one missing source
    std::vector<std::vector<std::uint8_t>> delivered;
    transport::FecDecoder decoder([&](std::span<const std::uint8_t> p) {
      delivered.emplace_back(p.begin(), p.end());
    });
    for (std::size_t i = 0; i < 4; ++i) {
      if (i != dropped) decoder.OnDatagram(framed[i]);
    }
    const auto& parity = framed[4];
    const std::size_t cut = 1 + rng() % (parity.size() - 1);
    ExpectNoCrash([&] { decoder.OnDatagram(std::span(parity.data(), cut)); });
    // Whatever happened, nothing delivered may differ from a real source.
    for (const auto& p : delivered) {
      bool is_real = false;
      for (std::size_t i = 0; i < 4; ++i) {
        if (i != dropped && p == sources[i]) is_real = true;
      }
      if (p == sources[dropped]) is_real = true;  // full recovery is fine
      EXPECT_TRUE(is_real) << "decoder fabricated a payload from a truncated parity";
    }
  }
}

TEST(Fuzz, QuicEndpointSurvivesGarbagePackets) {
  net::Simulator sim(9);
  net::Network network(&sim);
  network.BuildBackbone();
  const auto attacker = network.AddHost("x", "Chicago");
  const auto victim = network.AddHost("v", "NewYork");
  network.ComputeRoutes();
  transport::QuicEndpoint server(&network, victim, 4433);
  server.set_on_accept([](transport::QuicConnection*) {});

  std::mt19937_64 rng(10);
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(rng, 300);
    if (garbage.empty()) garbage.push_back(0);
    // Bias some packets toward valid-looking long/short headers.
    if (i % 3 == 0) garbage[0] = 0xC0;
    if (i % 3 == 1) garbage[0] = 0x40;
    network.SendUdp(attacker, 1000, victim, 4433, std::move(garbage));
  }
  sim.RunUntil(net::Seconds(5));
  SUCCEED();  // no crash, no hang
}

// Garbage delivered to an *established* connection reaches the frame parser
// and ACK processing, not just the endpoint demux — the deepest attack
// surface. Run against both transport paths.
void FuzzEstablishedConnection(const char* path) {
  if (std::string(path) == "legacy") {
    setenv("VTP_QUIC_PATH", "legacy", 1);
  } else {
    unsetenv("VTP_QUIC_PATH");
  }
  net::Simulator sim(13);
  net::Network network(&sim);
  network.BuildBackbone();
  const auto attacker = network.AddHost("x", "Chicago");
  const auto client_host = network.AddHost("c", "SanFrancisco");
  const auto victim = network.AddHost("v", "NewYork");
  network.ComputeRoutes();

  transport::QuicEndpoint client(&network, client_host, 9300);
  transport::QuicEndpoint server(&network, victim, 4433);
  server.set_on_accept([](transport::QuicConnection* conn) {
    conn->set_on_datagram([](std::span<const std::uint8_t>) {});
    conn->set_on_stream_data([](std::uint64_t, std::span<const std::uint8_t>, bool) {});
  });
  transport::QuicConnection* conn = client.Connect(victim, 4433);
  sim.RunUntil(net::Millis(300));
  ASSERT_TRUE(conn->established());

  // The deterministic CID scheme ((node << 32) | (port << 8) | seq) lets the
  // attacker address the client connection directly.
  const std::uint64_t client_cid = (static_cast<std::uint64_t>(client_host) << 32) |
                                   (static_cast<std::uint64_t>(9300) << 8) | 1;
  std::mt19937_64 rng(14);
  const auto forge = [&](std::initializer_list<std::uint8_t> frame_prefix) {
    std::vector<std::uint8_t> p;
    p.push_back(0x40);
    for (int s = 7; s >= 0; --s) {
      p.push_back(static_cast<std::uint8_t>(client_cid >> (8 * s)));
    }
    p.push_back(static_cast<std::uint8_t>(rng() % 64));  // 1-byte varint pn
    p.insert(p.end(), frame_prefix);
    const auto tail = RandomBytes(rng, 48);
    p.insert(p.end(), tail.begin(), tail.end());
    return p;
  };
  for (int i = 0; i < 200; ++i) {
    // Truncated / garbage ACK frames: random largest/delay/range-count
    // varints followed by noise, plus hand-picked degenerate encodings.
    network.SendUdp(attacker, 2000, client_host, 9300, forge({0x02}));
    network.SendUdp(attacker, 2001, client_host, 9300,
                    forge({0x02, 0xFF}));  // truncated 8-byte varint
    // Garbage stream / datagram / close frames.
    network.SendUdp(attacker, 2002, client_host, 9300, forge({0x0E}));
    network.SendUdp(attacker, 2003, client_host, 9300, forge({0x0F, 0x04}));
    network.SendUdp(attacker, 2004, client_host, 9300, forge({0x31, 0xBF}));
    // Truncated packets: header cut mid-CID.
    auto cut = forge({0x02, 0x10});
    cut.resize(1 + rng() % 8);
    network.SendUdp(attacker, 2005, client_host, 9300, std::move(cut));
  }
  sim.RunUntil(net::Seconds(5));

  // The connection survives and still carries traffic.
  EXPECT_FALSE(conn->closed());
  const std::uint64_t sent_before = conn->stats().datagrams_sent;
  conn->SendDatagram(std::vector<std::uint8_t>(100, 1));
  sim.RunUntil(sim.now() + net::Millis(300));
  EXPECT_EQ(conn->stats().datagrams_sent, sent_before + 1);
  unsetenv("VTP_QUIC_PATH");
}

TEST(Fuzz, EstablishedQuicConnectionSurvivesForgedFrames) {
  FuzzEstablishedConnection("default");
}

TEST(Fuzz, EstablishedQuicConnectionSurvivesForgedFramesLegacy) {
  FuzzEstablishedConnection("legacy");
}

TEST(Fuzz, RtpReceiverSurvivesGarbage) {
  net::Simulator sim(11);
  net::Network network(&sim);
  network.BuildBackbone();
  const auto a = network.AddHost("a", "Chicago");
  const auto b = network.AddHost("b", "Dallas");
  network.ComputeRoutes();
  int frames = 0;
  transport::RtpReceiver receiver(
      &network, b, 6000,
      [&](std::uint32_t, std::vector<std::uint8_t>, std::uint32_t, net::SimTime) {
        ++frames;
      });
  std::mt19937_64 rng(12);
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(rng, 200);
    if (!garbage.empty() && i % 2 == 0) garbage[0] = 0x80;  // RTP-looking
    network.SendUdp(a, 1000, b, 6000, std::move(garbage));
  }
  sim.RunUntil(net::Seconds(5));
  SUCCEED();
}

}  // namespace
}  // namespace vtp
