// Tests for the interleaved multi-lane rANS entropy stage (compress/rans.h,
// LZR2 container, VideoCodecConfig::entropy). The contracts:
//
//   * every lane count round-trips every corpus exactly;
//   * encoding is deterministic (same input + params -> same bytes, across
//     encoder instances and across repeat calls on one instance);
//   * legacy mode is untouched by the lanes machinery (LZR1 magic, decodes);
//   * malformed lanes streams (truncation, bit flips, bad lane byte) decode
//     or throw CorruptStream — never crash or overread;
//   * the video codec's lanes path round-trips bit-exactly against its own
//     reconstruction and matches legacy-mode reconstructions.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "compress/codec_engine.h"
#include "compress/lz77.h"
#include "compress/lzr.h"
#include "compress/lzr_stream.h"
#include "compress/rans.h"
#include "mesh/codec.h"
#include "mesh/generator.h"
#include "semantic/codec.h"
#include "semantic/generator.h"
#include "semantic/keypoints.h"
#include "video/codec.h"
#include "video/talking_head.h"

namespace vtp::compress {
namespace {

LzParams Lanes(int n) {
  LzParams p;
  p.entropy = EntropyMode::kLanes;
  p.entropy_lanes = n;
  return p;
}

LzParams Legacy() {
  LzParams p;
  p.entropy = EntropyMode::kLegacy;
  return p;
}

std::vector<std::uint8_t> RandomCorpus(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

std::vector<std::uint8_t> RepetitiveCorpus(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  const std::vector<std::uint8_t> motif = {'p', 'e', 'r', 's', 'o', 'n', 'a'};
  std::vector<std::uint8_t> data;
  data.reserve(n);
  while (data.size() < n) {
    data.push_back(motif[data.size() % motif.size()]);
    if (rng() % 29 == 0) data.back() = static_cast<std::uint8_t>(rng());
  }
  return data;
}

/// Keypoint corpus: the semantic codec's serialized temporal-delta bodies.
std::vector<std::vector<std::uint8_t>> KeypointCorpus(int frames, std::uint32_t seed) {
  semantic::KeypointTrackGenerator generator({}, seed);
  semantic::SemanticEncoder encoder(
      {.quantize_bits = 11, .temporal_delta = true, .lz_compress = false});
  std::vector<std::vector<std::uint8_t>> out;
  for (int i = 0; i < frames; ++i) {
    out.push_back(encoder.EncodeFrame(semantic::ExtractSemanticSubset(generator.Next())));
  }
  return out;
}

/// Mesh corpus: raw float32 vertex positions of a generated persona.
std::vector<std::uint8_t> MeshCorpus(std::uint64_t seed) {
  const mesh::TriangleMesh m = mesh::GeneratePersona(seed, 600);
  std::vector<std::uint8_t> bytes(m.positions.size() * sizeof(mesh::Vec3));
  std::memcpy(bytes.data(), m.positions.data(), bytes.size());
  return bytes;
}

/// Video corpus: raw luma of a synthetic talking-head frame.
std::vector<std::uint8_t> VideoCorpus(std::uint64_t seed) {
  video::TalkingHeadConfig config;
  config.resolution = {160, 96};
  video::TalkingHeadSource source(config, seed);
  return source.Next().luma;
}

std::vector<std::vector<std::uint8_t>> AllCorpora() {
  std::vector<std::vector<std::uint8_t>> corpora;
  corpora.push_back({});
  corpora.push_back({42});
  corpora.push_back({1, 2, 3});
  corpora.push_back(RandomCorpus(4096, 1));
  corpora.push_back(RepetitiveCorpus(4096, 2));
  corpora.push_back(std::vector<std::uint8_t>(2048, 0x55));
  for (auto& f : KeypointCorpus(6, 3)) corpora.push_back(std::move(f));
  corpora.push_back(MeshCorpus(7));
  corpora.push_back(VideoCorpus(9));
  return corpora;
}

// ---- round trip across lane counts -----------------------------------------

TEST(RansLanes, RoundTripsEveryLaneCount) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  for (const int lanes : {1, 2, 4, 8, 16}) {
    for (const auto& data : AllCorpora()) {
      out.clear();
      encoder.CompressInto(data, out, Lanes(lanes));
      ASSERT_GE(out.size(), 4u);
      EXPECT_TRUE(std::memcmp(out.data(), "LZR2", 4) == 0);
      LzrDecompressInto(out, decoded);
      EXPECT_EQ(decoded, data) << "lanes=" << lanes << " size=" << data.size();
    }
  }
}

TEST(RansLanes, CountingSinkSizeIsExact) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> out;
  for (const auto& data : AllCorpora()) {
    out.clear();
    encoder.CompressInto(data, out, Lanes(8));
    EXPECT_EQ(encoder.CompressedSize(data, Lanes(8)), out.size());
  }
}

TEST(RansLanes, DeterministicAcrossEncodersAndCalls) {
  LzrEncoder a, b;
  std::vector<std::uint8_t> first, second, other;
  const auto data = RepetitiveCorpus(8192, 21);
  a.CompressInto(data, first, Lanes(4));
  a.CompressInto(data, second, Lanes(4));  // warm arena, second call
  b.CompressInto(data, other, Lanes(4));
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, other);
}

TEST(RansLanes, InvalidLaneCountsFallBackToDefault) {
  LzrEncoder encoder;
  const auto data = RepetitiveCorpus(1024, 5);
  std::vector<std::uint8_t> reference, out, decoded;
  encoder.CompressInto(data, reference, Lanes(kRansDefaultLanes));
  for (const int bad : {0, 3, 5, 17, 64, -2}) {
    out.clear();
    encoder.CompressInto(data, out, Lanes(bad));
    EXPECT_EQ(out, reference) << "lanes=" << bad;
    LzrDecompressInto(out, decoded);
    EXPECT_EQ(decoded, data);
  }
}

// ---- legacy coexistence ----------------------------------------------------

TEST(RansLanes, LegacyVsLanesDifferential) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> legacy, lanes, decoded;
  for (const auto& data : AllCorpora()) {
    legacy.clear();
    encoder.CompressInto(data, legacy, Legacy());
    lanes.clear();
    encoder.CompressInto(data, lanes, Lanes(8));

    // Legacy bytes must be exactly the seed compressor's output.
    EXPECT_EQ(legacy, LzrCompressLegacy(data, Legacy()));

    // Both containers decode to the input through the same sniffing entry.
    LzrDecompressInto(legacy, decoded);
    EXPECT_EQ(decoded, data);
    LzrDecompressInto(lanes, decoded);
    EXPECT_EQ(decoded, data);

    // Same models, same parse: the rANS stream pays only per-lane flush
    // overhead (4 bytes/lane) plus rounding, never a materially worse rate.
    EXPECT_LE(lanes.size(), legacy.size() + 8 * 4 + 16 + legacy.size() / 16)
        << "input size " << data.size();
  }
}

TEST(RansLanes, EngineAppliesConfiguredLanes) {
  LzParams params = Lanes(4);
  CodecEngine engine(params);
  EXPECT_EQ(engine.lanes_active(), 4);
  const auto data = RepetitiveCorpus(2048, 33);
  std::vector<std::uint8_t> out, direct, decoded;
  engine.CompressInto(data, out);
  LzrEncoder reference;
  reference.CompressInto(data, direct, params);
  EXPECT_EQ(out, direct);
  LzrDecompressInto(out, decoded);
  EXPECT_EQ(decoded, data);
  EXPECT_EQ(engine.stats().frames, 1u);
  EXPECT_EQ(engine.stats().bytes_in, data.size());
  EXPECT_EQ(engine.stats().bytes_out, out.size());

  CodecEngine legacy_engine{Legacy()};
  EXPECT_EQ(legacy_engine.lanes_active(), 0);
}

// ---- adversarial inputs -----------------------------------------------------

TEST(RansLanes, TruncatedStreamsDecodeOrThrow) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  const auto data = RepetitiveCorpus(4096, 11);
  encoder.CompressInto(data, out, Lanes(8));
  for (std::size_t cut = 0; cut < out.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(out.data(), cut);
    try {
      LzrDecompressInto(prefix, decoded);
      // Decoding a strict prefix to the exact input would mean trailing
      // bytes were silently ignored; Finish() forbids that.
      EXPECT_NE(decoded, data) << "cut=" << cut;
    } catch (const CorruptStream&) {
      // expected for nearly every cut
    }
  }
}

TEST(RansLanes, BitFlippedStreamsDecodeOrThrow) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  const auto data = RepetitiveCorpus(2048, 13);
  encoder.CompressInto(data, out, Lanes(8));
  std::mt19937 rng(99);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> mutated = out;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    try {
      LzrDecompressInto(mutated, decoded);  // garbage out is acceptable
    } catch (const CorruptStream&) {
      // also acceptable; anything else (crash, sanitizer trip) is not
    }
  }
}

TEST(RansLanes, BadLaneByteThrows) {
  LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  const auto data = RepetitiveCorpus(512, 15);
  encoder.CompressInto(data, out, Lanes(8));
  // Container: magic(4) | uleb128 size | lane byte | payload. 512 < 2^14,
  // so the uleb is two bytes and the lane byte sits at offset 6.
  ASSERT_GT(out.size(), 7u);
  ASSERT_EQ(out[6], 8u);
  for (const std::uint8_t bad : {0, 3, 17, 255}) {
    std::vector<std::uint8_t> mutated = out;
    mutated[6] = bad;
    EXPECT_THROW(LzrDecompressInto(mutated, decoded), CorruptStream) << "lanes=" << int(bad);
  }
}

TEST(RansLanes, RandomGarbageNeverCrashes) {
  std::mt19937 rng(123);
  std::vector<std::uint8_t> decoded;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> garbage(rng() % 256);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    // Force the lanes magic half the time so the rANS path is exercised.
    if (garbage.size() >= 5 && trial % 2 == 0) std::memcpy(garbage.data(), "LZR2", 4);
    try {
      LzrDecompressInto(garbage, decoded);
    } catch (const CorruptStream&) {
    }
  }
}

}  // namespace
}  // namespace vtp::compress

// ---- video codec lanes mode -------------------------------------------------

namespace vtp::video {
namespace {

constexpr Resolution kSmall{160, 96};

TalkingHeadSource MakeSource(std::uint64_t seed) {
  TalkingHeadConfig config;
  config.resolution = kSmall;
  return TalkingHeadSource(config, seed);
}

TEST(VideoLanes, RoundTripsAcrossGop) {
  VideoCodecConfig config;
  config.gop_length = 5;
  config.entropy = compress::EntropyMode::kLanes;
  VideoEncoder enc(kSmall, config);
  VideoDecoder dec(kSmall);
  TalkingHeadSource source = MakeSource(3);
  for (int i = 0; i < 12; ++i) {
    const EncodedFrame encoded = enc.Encode(source.Next(), 12);
    const auto decoded = dec.Decode(encoded.bytes);
    ASSERT_TRUE(decoded.has_value()) << "frame " << i;
    EXPECT_EQ(decoded->width, kSmall.width);
  }
}

TEST(VideoLanes, LanesAndLegacyReconstructIdentically) {
  // Entropy coding is lossless, so both modes must reconstruct the exact
  // same pixels — only the byte container differs.
  VideoCodecConfig legacy_cfg{.gop_length = 6, .entropy = compress::EntropyMode::kLegacy};
  VideoCodecConfig lanes_cfg{.gop_length = 6, .entropy = compress::EntropyMode::kLanes};
  VideoEncoder enc_legacy(kSmall, legacy_cfg), enc_lanes(kSmall, lanes_cfg);
  VideoDecoder dec_legacy(kSmall), dec_lanes(kSmall);
  TalkingHeadSource src_a = MakeSource(5), src_b = MakeSource(5);
  for (int i = 0; i < 10; ++i) {
    const VideoFrame fa = src_a.Next();
    const VideoFrame fb = src_b.Next();
    const auto da = dec_legacy.Decode(enc_legacy.Encode(fa, 14).bytes);
    const auto db = dec_lanes.Decode(enc_lanes.Encode(fb, 14).bytes);
    ASSERT_TRUE(da.has_value());
    ASSERT_TRUE(db.has_value());
    EXPECT_EQ(da->luma, db->luma) << "frame " << i;
  }
}

TEST(VideoLanes, EncodeIntoMatchesEncode) {
  VideoCodecConfig config{.gop_length = 4, .entropy = compress::EntropyMode::kLanes};
  VideoEncoder enc_a(kSmall, config), enc_b(kSmall, config);
  VideoDecoder dec(kSmall);
  TalkingHeadSource src_a = MakeSource(8), src_b = MakeSource(8);
  EncodedFrame reused;
  VideoFrame decoded_frame;
  for (int i = 0; i < 9; ++i) {
    const EncodedFrame fresh = enc_a.Encode(src_a.Next(), 16);
    enc_b.EncodeInto(src_b.Next(), 16, reused);
    EXPECT_EQ(fresh.bytes, reused.bytes) << "frame " << i;
    EXPECT_EQ(fresh.keyframe, reused.keyframe);
    ASSERT_TRUE(dec.DecodeInto(reused.bytes, decoded_frame));
    EXPECT_EQ(decoded_frame.width, kSmall.width);
  }
}

TEST(VideoLanes, CorruptLanesFramesThrowOrReject) {
  VideoCodecConfig config{.entropy = compress::EntropyMode::kLanes};
  VideoEncoder enc(kSmall, config);
  VideoDecoder dec(kSmall);
  TalkingHeadSource source = MakeSource(2);
  EncodedFrame frame = enc.Encode(source.Next(), 12);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> mutated = frame.bytes;
    mutated.resize(rng() % mutated.size() + 1);
    if (!mutated.empty()) mutated[rng() % mutated.size()] ^= 0x20;
    try {
      (void)dec.Decode(mutated);
    } catch (const compress::CorruptStream&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

}  // namespace
}  // namespace vtp::video
