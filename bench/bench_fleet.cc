// Fleet-scale A/B bench for the sharded simulation core.
//
// Drives thousands of concurrent FaceTime-style sessions (diurnal arrivals,
// exponential holding times) over the 19-metro backbone through
// vca::FleetSim, once per shard count, and reports wall-clock scaling plus
// fleet-wide p50/p95 frame latency from the merged per-shard snapshots.
//
// Hard gates (exit 1 on failure):
//   * merged-snapshot digests are bit-identical across every shard count;
//   * --smoke additionally pins the windowed 1-shard engine against the
//     plain single-threaded Simulator::Run() reference (RunDirect);
//   * full mode sustains the 2k-session target, and — only on machines with
//     >= 4 hardware threads, where the comparison is meaningful — requires
//     >= 3x speedup at 4 shards over 1.
//
// Results land in BENCH_fleet.json (VTP_BENCH_JSON overrides).
//
// Usage: bench_fleet [--smoke]
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "core/thread_pool.h"
#include "vca/fleet.h"

namespace {

using vtp::vca::FleetConfig;
using vtp::vca::FleetResult;
using vtp::vca::FleetSim;

struct Row {
  std::string label;
  int shards = 0;
  FleetResult r;
};

void PrintRow(const Row& row) {
  const double frames_per_s = row.r.wall_s > 0 ? row.r.frames_delivered / row.r.wall_s : 0;
  std::printf(
      "  %-10s shards=%d  wall=%6.2fs  events=%9" PRIu64 "  frames=%8" PRIu64
      "  %8.0f fr/s  p50=%6.2fms  p95=%6.2fms  handoffs=%8" PRIu64 "  digest=%016" PRIx64 "\n",
      row.label.c_str(), row.shards, row.r.wall_s, row.r.events, row.r.frames_delivered,
      frames_per_s, row.r.e2e_p50_ms, row.r.e2e_p95_ms, row.r.handoffs, row.r.digest);
}

void WriteRow(vtp::core::JsonWriter& w, const Row& row, double fps) {
  w.BeginObject();
  w.Key("label"); w.String(row.label);
  w.Key("shards"); w.Int(row.shards);
  w.Key("wall_s"); w.Number(row.r.wall_s);
  w.Key("events"); w.Int(static_cast<std::int64_t>(row.r.events));
  w.Key("hops"); w.Int(static_cast<std::int64_t>(row.r.hops));
  w.Key("handoffs"); w.Int(static_cast<std::int64_t>(row.r.handoffs));
  w.Key("handoff_copies"); w.Int(static_cast<std::int64_t>(row.r.handoff_copies));
  w.Key("spills"); w.Int(static_cast<std::int64_t>(row.r.spills));
  w.Key("windows"); w.Int(static_cast<std::int64_t>(row.r.windows));
  w.Key("lookahead_us"); w.Number(vtp::net::ToMicros(row.r.lookahead));
  w.Key("frames_sent"); w.Int(static_cast<std::int64_t>(row.r.frames_sent));
  w.Key("frames_delivered"); w.Int(static_cast<std::int64_t>(row.r.frames_delivered));
  w.Key("peak_concurrent"); w.Number(row.r.peak_concurrent);
  w.Key("e2e_p50_ms"); w.Number(row.r.e2e_p50_ms);
  w.Key("e2e_p95_ms"); w.Number(row.r.e2e_p95_ms);
  const double wall = row.r.wall_s;
  w.Key("frames_per_wall_s"); w.Number(wall > 0 ? row.r.frames_delivered / wall : 0);
  // "Sessions per second" at fleet scale: concurrent session-seconds
  // simulated per wall-clock second (frames / (2 senders * fps) session-s).
  const double session_s = row.r.frames_sent / (2.0 * fps);
  w.Key("session_s_per_wall_s"); w.Number(wall > 0 ? session_s / wall : 0);
  char digest[32];
  std::snprintf(digest, sizeof digest, "%016" PRIx64, row.r.digest);
  w.Key("digest"); w.String(digest);
  w.EndObject();
}

FleetConfig BaseConfig(bool smoke) {
  FleetConfig cfg;
  cfg.seed = 7;
  if (smoke) {
    cfg.target_sessions = 64;
    cfg.duration = vtp::net::Seconds(3);
    cfg.mean_session_s = 20;
    cfg.diurnal_period_s = 3;
  } else {
    cfg.target_sessions = 2000;
    cfg.duration = vtp::bench::FullRuns() ? vtp::net::Seconds(12) : vtp::net::Seconds(6);
    cfg.mean_session_s = 60;
    cfg.diurnal_period_s = 20;
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  vtp::bench::Banner(smoke ? "fleet bench (smoke)" : "fleet bench");
  FleetConfig cfg = BaseConfig(smoke);
  FleetSim fleet(cfg);
  std::printf("  schedule: %zu sessions, peak concurrency %d, horizon %.1fs\n",
              fleet.schedule().size(), static_cast<int>(cfg.target_sessions),
              vtp::net::ToSeconds(cfg.duration));

  std::vector<Row> rows;
  const std::vector<int> shard_counts = smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};

  if (smoke) {
    // Differential pin: the same model on a plain Simulator::Run(), no
    // windows, no mailboxes.
    FleetConfig direct_cfg = cfg;
    FleetSim direct(direct_cfg);
    rows.push_back({"direct", 1, direct.RunDirect()});
    PrintRow(rows.back());
  }
  for (int shards : shard_counts) {
    FleetConfig c = cfg;
    c.shards = shards;
    FleetSim sim(c);
    rows.push_back({"windowed", shards, sim.Run()});
    PrintRow(rows.back());
  }

  bool digests_identical = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].r.digest != rows[0].r.digest) {
      std::printf("FAIL: digest mismatch: %s/%d %016" PRIx64 " vs %s/%d %016" PRIx64 "\n",
                  rows[i].label.c_str(), rows[i].shards, rows[i].r.digest, rows[0].label.c_str(),
                  rows[0].shards, rows[0].r.digest);
      digests_identical = false;
    }
  }
  bool ok = digests_identical;
  if (rows[0].r.frames_delivered == 0) {
    std::printf("FAIL: no frames delivered\n");
    ok = false;
  }

  double speedup4 = 0;
  bool speedup_gated = false;
  if (!smoke) {
    if (rows.front().r.peak_concurrent < cfg.target_sessions) {
      std::printf("FAIL: peak concurrency %.0f below the %0.f-session target\n",
                  rows.front().r.peak_concurrent, cfg.target_sessions);
      ok = false;
    }
    const Row* one = nullptr;
    const Row* four = nullptr;
    for (const Row& row : rows) {
      if (row.shards == 1) one = &row;
      if (row.shards == 4) four = &row;
    }
    if (one != nullptr && four != nullptr && four->r.wall_s > 0) {
      speedup4 = one->r.wall_s / four->r.wall_s;
      // The >=3x gate needs 4 real cores; on smaller machines (or
      // oversubscribed CI) report the ratio without failing the run.
      speedup_gated = vtp::core::ThreadPool::HardwareThreads() >= 4;
      std::printf("  speedup 4-shard vs 1-shard: %.2fx (%s, %u hw threads)\n", speedup4,
                  speedup_gated ? "gated >=3x" : "informational",
                  vtp::core::ThreadPool::HardwareThreads());
      if (speedup_gated && speedup4 < 3.0) {
        std::printf("FAIL: 4-shard speedup %.2fx < 3x\n", speedup4);
        ok = false;
      }
    }
  }

  vtp::bench::JsonReport report("fleet");
  vtp::core::JsonWriter& w = report.writer();
  w.Key("smoke"); w.Bool(smoke);
  w.Key("sessions"); w.Int(static_cast<std::int64_t>(fleet.schedule().size()));
  w.Key("target_concurrent"); w.Number(cfg.target_sessions);
  w.Key("hw_threads"); w.Int(static_cast<std::int64_t>(vtp::core::ThreadPool::HardwareThreads()));
  w.Key("digests_identical"); w.Bool(digests_identical);
  if (!smoke) {
    w.Key("speedup_4_vs_1"); w.Number(speedup4);
    w.Key("speedup_gated"); w.Bool(speedup_gated);
  }
  w.Key("runs");
  w.BeginArray();
  for (const Row& row : rows) WriteRow(w, row, cfg.fps);
  w.EndArray();
  const std::string path = report.Write();

  std::printf("\n  %s; report: %s\n", ok ? "PASS" : "FAIL", path.c_str());
  return ok ? 0 : 1;
}
