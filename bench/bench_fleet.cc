// Fleet-scale A/B bench for the sharded simulation core.
//
// Drives thousands of concurrent FaceTime-style sessions (diurnal arrivals,
// exponential holding times) over the 19-metro backbone through
// vca::FleetSim, once per shard count, and reports wall-clock scaling plus
// fleet-wide p50/p95 frame latency from the merged per-shard snapshots.
//
// Hard gates (exit 1 on failure):
//   * merged-snapshot digests are bit-identical across every shard count
//     AND across the express / per-hop delivery engines;
//   * --smoke additionally pins the windowed 1-shard engine against the
//     plain single-threaded Simulator::Run() reference (RunDirect), in both
//     engines;
//   * --baseline=FILE compares the windowed 1-shard frames_per_wall_s
//     against the committed report and fails on a >10% regression;
//   * full mode sustains the session target, and — only on machines with
//     >= 4 hardware threads, where the comparison is meaningful — requires
//     >= 3x speedup at 4 shards over 1.
//
// Results land in BENCH_fleet.json (VTP_BENCH_JSON overrides).
//
// Usage: bench_fleet [--smoke] [--sessions=N] [--shards=K1,K2,...]
//                    [--minutes=M] [--baseline=FILE]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "core/thread_pool.h"
#include "vca/fleet.h"

namespace {

using vtp::vca::FleetConfig;
using vtp::vca::FleetResult;
using vtp::vca::FleetSim;

struct Row {
  std::string label;
  int shards = 0;
  FleetResult r;
};

double Fpws(const Row& row) {
  return row.r.wall_s > 0 ? static_cast<double>(row.r.frames_delivered) / row.r.wall_s : 0;
}

void PrintRow(const Row& row) {
  std::printf(
      "  %-8s %-7s shards=%d  wall=%6.2fs  frames=%8" PRIu64 "  %9.0f fr/s  p50=%6.2fms  "
      "p95=%6.2fms  handoffs=%8" PRIu64 "  ff=%9" PRIu64 "  digest=%016" PRIx64 "\n",
      row.label.c_str(), row.r.path.c_str(), row.shards, row.r.wall_s, row.r.frames_delivered,
      Fpws(row), row.r.e2e_p50_ms, row.r.e2e_p95_ms, row.r.handoffs, row.r.fastforwards,
      row.r.digest);
}

void WriteRow(vtp::core::JsonWriter& w, const Row& row, double fps) {
  w.BeginObject();
  w.Key("label"); w.String(row.label);
  w.Key("shards"); w.Int(row.shards);
  w.Key("path"); w.String(row.r.path);
  w.Key("wall_s"); w.Number(row.r.wall_s);
  w.Key("events"); w.Int(static_cast<std::int64_t>(row.r.events));
  w.Key("hops"); w.Int(static_cast<std::int64_t>(row.r.hops));
  w.Key("handoffs"); w.Int(static_cast<std::int64_t>(row.r.handoffs));
  w.Key("fastforwards"); w.Int(static_cast<std::int64_t>(row.r.fastforwards));
  w.Key("spills"); w.Int(static_cast<std::int64_t>(row.r.spills));
  w.Key("windows"); w.Int(static_cast<std::int64_t>(row.r.windows));
  w.Key("lookahead_us"); w.Number(vtp::net::ToMicros(row.r.lookahead));
  w.Key("frames_sent"); w.Int(static_cast<std::int64_t>(row.r.frames_sent));
  w.Key("frames_delivered"); w.Int(static_cast<std::int64_t>(row.r.frames_delivered));
  w.Key("peak_concurrent"); w.Number(row.r.peak_concurrent);
  w.Key("e2e_p50_ms"); w.Number(row.r.e2e_p50_ms);
  w.Key("e2e_p95_ms"); w.Number(row.r.e2e_p95_ms);
  w.Key("frames_per_wall_s"); w.Number(Fpws(row));
  // "Sessions per second" at fleet scale: concurrent session-seconds
  // simulated per wall-clock second (frames / (2 senders * fps) session-s).
  const double session_s = row.r.frames_sent / (2.0 * fps);
  w.Key("session_s_per_wall_s"); w.Number(row.r.wall_s > 0 ? session_s / row.r.wall_s : 0);
  char digest[32];
  std::snprintf(digest, sizeof digest, "%016" PRIx64, row.r.digest);
  w.Key("digest"); w.String(digest);
  w.EndObject();
}

FleetConfig BaseConfig(bool smoke) {
  FleetConfig cfg;
  cfg.seed = 7;
  if (smoke) {
    cfg.target_sessions = 64;
    cfg.duration = vtp::net::Seconds(3);
    cfg.mean_session_s = 20;
    cfg.diurnal_period_s = 3;
  } else {
    cfg.target_sessions = 2000;
    cfg.duration = vtp::bench::FullRuns() ? vtp::net::Seconds(12) : vtp::net::Seconds(6);
    cfg.mean_session_s = 60;
    cfg.diurnal_period_s = 20;
  }
  return cfg;
}

/// Pulls the windowed 1-shard frames_per_wall_s out of a committed
/// BENCH_fleet.json (compact core::JsonWriter output; the first windowed
/// shards=1 run is the single-core baseline row). Returns -1 when the file
/// is missing or doesn't contain the row.
double ReadBaselineFpws(const std::string& file) {
  std::ifstream in(file);
  if (!in) return -1;
  const std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const std::size_t at = text.find("\"label\":\"windowed\",\"shards\":1");
  if (at == std::string::npos) return -1;
  const std::string key = "\"frames_per_wall_s\":";
  const std::size_t k = text.find(key, at);
  if (k == std::string::npos) return -1;
  return std::atof(text.c_str() + k + key.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double sessions = -1;
  double minutes = -1;
  std::vector<int> shard_counts;
  std::string baseline;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(arg, "--sessions=", 11) == 0) {
      sessions = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--minutes=", 10) == 0) {
      minutes = std::atof(arg + 10);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      for (const char* p = arg + 9; *p != '\0';) {
        shard_counts.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline = arg + 11;
    } else {
      std::fprintf(stderr,
                   "usage: bench_fleet [--smoke] [--sessions=N] [--shards=K1,K2,...] "
                   "[--minutes=M] [--baseline=FILE]\n");
      return 2;
    }
  }

  vtp::bench::Banner(smoke ? "fleet bench (smoke)" : "fleet bench");
  FleetConfig cfg = BaseConfig(smoke);
  if (sessions > 0) cfg.target_sessions = sessions;
  if (minutes > 0) {
    cfg.duration = static_cast<vtp::net::SimTime>(minutes * 60.0 * vtp::net::kSecond);
  }
  if (shard_counts.empty()) shard_counts = smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};

  // Windowed rows defer to VTP_FLEET_PATH (default express) so the engines
  // can be A/B'd per run; the smoke differential rows pin both explicitly.
  FleetSim fleet(cfg);
  std::printf("  schedule: %zu sessions, peak concurrency %d, horizon %.1fs\n",
              fleet.schedule().size(), static_cast<int>(cfg.target_sessions),
              vtp::net::ToSeconds(cfg.duration));

  std::vector<Row> rows;
  if (smoke) {
    // Differential pins: the same model on a plain Simulator::Run() (no
    // windows, no mailboxes), in both delivery engines, plus the per-hop
    // windowed single shard — every digest must match the express rows.
    for (const char* path : {"express", "hops"}) {
      FleetConfig c = cfg;
      c.path = path;
      FleetSim direct(c);
      rows.push_back({"direct", 1, direct.RunDirect()});
      PrintRow(rows.back());
    }
    {
      FleetConfig c = cfg;
      c.path = "hops";
      c.shards = 1;
      FleetSim sim(c);
      rows.push_back({"refpath", 1, sim.Run()});
      PrintRow(rows.back());
    }
  }
  for (int shards : shard_counts) {
    FleetConfig c = cfg;
    c.shards = shards;
    FleetSim sim(c);
    rows.push_back({"windowed", shards, sim.Run()});
    PrintRow(rows.back());
  }

  bool digests_identical = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].r.digest != rows[0].r.digest) {
      std::printf("FAIL: digest mismatch: %s/%s/%d %016" PRIx64 " vs %s/%s/%d %016" PRIx64 "\n",
                  rows[i].label.c_str(), rows[i].r.path.c_str(), rows[i].shards, rows[i].r.digest,
                  rows[0].label.c_str(), rows[0].r.path.c_str(), rows[0].shards, rows[0].r.digest);
      digests_identical = false;
    }
  }
  bool ok = digests_identical;
  if (rows[0].r.frames_delivered == 0) {
    std::printf("FAIL: no frames delivered\n");
    ok = false;
  }

  const Row* gate_row = nullptr;  // windowed express, 1 shard: the baseline row
  for (const Row& row : rows) {
    if (row.label == "windowed" && row.shards == 1 && row.r.path == "express") {
      gate_row = &row;
      break;
    }
  }
  if (smoke) {
    const Row* hops_row = nullptr;
    for (const Row& row : rows) {
      if (row.label == "refpath") hops_row = &row;
    }
    if (gate_row != nullptr && hops_row != nullptr && hops_row->r.wall_s > 0) {
      std::printf("  express vs per-hop, 1 shard: %.2fx frames/wall-s\n",
                  Fpws(*gate_row) / Fpws(*hops_row));
    }
  }

  double baseline_fpws = -1;
  if (!baseline.empty()) {
    baseline_fpws = ReadBaselineFpws(baseline);
    if (baseline_fpws <= 0) {
      std::printf("FAIL: no windowed 1-shard frames_per_wall_s in baseline %s\n",
                  baseline.c_str());
      ok = false;
    } else if (gate_row == nullptr) {
      std::printf("FAIL: --baseline given but no windowed 1-shard express run\n");
      ok = false;
    } else {
      const double fpws = Fpws(*gate_row);
      std::printf("  single-core throughput vs baseline: %.0f vs %.0f fr/wall-s (%.2fx)\n",
                  fpws, baseline_fpws, fpws / baseline_fpws);
      if (fpws < 0.9 * baseline_fpws) {
        std::printf("FAIL: >10%% single-core throughput regression\n");
        ok = false;
      }
    }
  }

  double speedup4 = 0;
  bool speedup_gated = false;
  if (!smoke) {
    if (rows.front().r.peak_concurrent < cfg.target_sessions) {
      std::printf("FAIL: peak concurrency %.0f below the %0.f-session target\n",
                  rows.front().r.peak_concurrent, cfg.target_sessions);
      ok = false;
    }
    const Row* one = nullptr;
    const Row* four = nullptr;
    for (const Row& row : rows) {
      if (row.label != "windowed") continue;
      if (row.shards == 1) one = &row;
      if (row.shards == 4) four = &row;
    }
    if (one != nullptr && four != nullptr && four->r.wall_s > 0) {
      speedup4 = one->r.wall_s / four->r.wall_s;
      // The >=3x gate needs 4 real cores; on smaller machines (or
      // oversubscribed CI) report the ratio without failing the run.
      speedup_gated = vtp::core::ThreadPool::HardwareThreads() >= 4;
      std::printf("  speedup 4-shard vs 1-shard: %.2fx (%s, %u hw threads)\n", speedup4,
                  speedup_gated ? "gated >=3x" : "informational",
                  vtp::core::ThreadPool::HardwareThreads());
      if (speedup_gated && speedup4 < 3.0) {
        std::printf("FAIL: 4-shard speedup %.2fx < 3x\n", speedup4);
        ok = false;
      }
    }
  }

  vtp::bench::JsonReport report("fleet");
  vtp::core::JsonWriter& w = report.writer();
  w.Key("smoke"); w.Bool(smoke);
  w.Key("sessions"); w.Int(static_cast<std::int64_t>(fleet.schedule().size()));
  w.Key("target_concurrent"); w.Number(cfg.target_sessions);
  w.Key("hw_threads"); w.Int(static_cast<std::int64_t>(vtp::core::ThreadPool::HardwareThreads()));
  w.Key("digests_identical"); w.Bool(digests_identical);
  if (baseline_fpws > 0 && gate_row != nullptr) {
    w.Key("baseline_frames_per_wall_s"); w.Number(baseline_fpws);
  }
  if (!smoke) {
    w.Key("speedup_4_vs_1"); w.Number(speedup4);
    w.Key("speedup_gated"); w.Bool(speedup_gated);
  }
  w.Key("runs");
  w.BeginArray();
  for (const Row& row : rows) WriteRow(w, row, cfg.fps);
  w.EndArray();
  const std::string path = report.Write();

  std::printf("\n  %s; report: %s\n", ok ? "PASS" : "FAIL", path.c_str());
  return ok ? 0 : 1;
}
