// §4.3 "What is Being Delivered?" — the paper's four discriminating
// experiments:
//
//   (a) direct 3D streaming: Draco-class compression of ~70-90 K-triangle
//       head meshes at 90 FPS needs ~107 Mbps — ruled out;
//   (b) pre-rendered 2D video: the persona-vs-real-world display-latency
//       difference would track injected network delay — it does not;
//   (c) semantic keypoints: 74 points (32 mouth/eyes + 2x21 hands), LZMA'd
//       floats at 90 FPS ~ 0.64 Mbps — matches the measured ~0.67 Mbps;
//   (d) no rate adaptation: capping the uplink below ~700 Kbps makes the
//       spatial persona unavailable, while 2D pipelines adapt gracefully.
#include <iostream>

#include "bench/bench_util.h"
#include "core/display_latency.h"
#include "mesh/codec.h"
#include "mesh/generator.h"
#include "netsim/random.h"
#include "semantic/codec.h"
#include "semantic/generator.h"
#include "vca/session.h"

using namespace vtp;

namespace {

void RunMeshStreaming() {
  bench::Banner("4.3a: direct 3D streaming (Draco-class mesh codec @ 90 FPS)");

  // Five head scans of 70-90 K triangles, like the paper's Sketchfab picks,
  // compressed once and streamed at 90 FPS (the paper's exact procedure).
  const std::size_t budgets[] = {70000, 75000, 80000, 85000, 90000};

  core::TextTable table;
  table.SetHeader({"mesh", "triangles", "bytes/frame", "bytes/tri", "Mbps @90FPS"});
  struct MeshRun {
    double triangles = 0, bytes_per_frame = 0;
  };
  const auto mesh_runs = bench::ParallelRepeats(5, [&](int i) {
    const auto m = static_cast<std::size_t>(i);
    const mesh::TriangleMesh head = mesh::GenerateHead(budgets[m], 100 + m);
    return MeshRun{static_cast<double>(head.triangle_count()),
                   static_cast<double>(mesh::EncodedMeshSize(head))};
  });
  std::vector<double> mbps_all;
  for (std::size_t m = 0; m < 5; ++m) {
    const MeshRun& run = mesh_runs[m];
    const double mbps = run.bytes_per_frame * 8 * 90 / 1e6;
    mbps_all.push_back(mbps);
    table.AddRow({"head-" + std::to_string(m + 1), core::Fmt(run.triangles, 0),
                  core::Fmt(run.bytes_per_frame, 0),
                  core::Fmt(run.bytes_per_frame / run.triangles, 2), core::Fmt(mbps, 1)});
  }
  table.Print(std::cout);
  const core::Summary s = core::Summarize(mbps_all);
  std::cout << "\nMeasured " << core::MeanPlusMinus(s, 1)
            << " Mbps (paper: 107.4±14.1) — two orders of magnitude above the\n"
               "~0.7 Mbps the spatial persona consumes, so 3D streaming is ruled out.\n";
}

void RunKeypointStreaming() {
  bench::Banner("4.3c: semantic keypoint delivery (74 points, lzr, 90 FPS)");

  const int frames = bench::FullRuns() ? 2000 : 2000;  // the paper's 2,000 frames
  semantic::KeypointTrackGenerator generator({}, 9);
  semantic::SemanticEncoder encoder;  // float32 + LZ: the paper's scheme
  std::vector<double> frame_bytes;
  for (int i = 0; i < frames; ++i) {
    frame_bytes.push_back(static_cast<double>(
        encoder.EncodeFrame(semantic::ExtractSemanticSubset(generator.Next())).size()));
  }
  const core::Summary bytes = core::Summarize(frame_bytes);
  const double mbps = bytes.mean * 8 * 90 / 1e6;
  const double std_mbps = bytes.stddev * 8 * 90 / 1e6;

  core::TextTable table;
  table.SetHeader({"metric", "measured", "paper"});
  table.AddRow({"keypoints per frame", "74 (32 face + 2x21 hands)", "74"});
  table.AddRow({"bytes/frame", core::MeanPlusMinus(bytes, 0), "-"});
  table.AddRow({"throughput (Mbps)",
                core::Fmt(mbps, 2) + "±" + core::Fmt(std_mbps, 2), "0.64±0.02"});
  table.Print(std::cout);
  std::cout << "\nWithin noise of FaceTime's measured 0.67 Mbps: semantic delivery is\n"
               "the only hypothesis consistent with the traffic.\n";
}

void RunDisplayLatency() {
  bench::Banner("4.3b: display-latency difference vs injected delay (tc netem)");

  core::TextTable table;
  table.SetHeader({"injected delay (ms)", "local reconstruction (ms)", "remote pre-rendered (ms)"});
  const std::vector<int> delays = {0, 100, 250, 500, 1000};
  const auto latency_rows = bench::ParallelRepeats(
      static_cast<int>(delays.size()), [&](int i) {
        core::DisplayLatencyConfig config;
        config.injected_delay = net::Millis(delays[static_cast<std::size_t>(i)]);
        config.mode = core::DeliveryMode::kLocalReconstruction;
        const double local = core::MeasureDisplayLatency(config).difference_ms;
        config.mode = core::DeliveryMode::kRemotePrerendered;
        const double remote = core::MeasureDisplayLatency(config).difference_ms;
        return std::make_pair(local, remote);
      });
  for (std::size_t i = 0; i < delays.size(); ++i) {
    table.AddRow({core::Fmt(delays[i], 0), core::Fmt(latency_rows[i].first, 1),
                  core::Fmt(latency_rows[i].second, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nThe measured difference stays <16 ms at any delay (left column), which\n"
               "matches the paper and rules out remotely pre-rendered 2D video (right).\n";
}

void RunRateAdaptation() {
  bench::Banner("4.3d: rate adaptation — uplink caps vs persona availability");

  core::TextTable table;
  table.SetHeader({"uplink cap (Kbps)", "FaceTime persona availability",
                   "Webex uplink after cap (Mbps)"});
  const std::vector<double> caps = {1200.0, 900.0, 700.0, 600.0, 500.0, 400.0};
  const auto cap_rows = bench::ParallelRepeats(static_cast<int>(caps.size()), [&](int i) {
    const double cap_kbps = caps[static_cast<std::size_t>(i)];
    // FaceTime spatial: does the persona survive the cap?
    double availability = 0;
    {
      vca::SessionConfig config;
      config.participants = {
          {.name = "U1", .metro = "SanFrancisco", .device = vca::DeviceType::kVisionPro},
          {.name = "U2", .metro = "NewYork", .device = vca::DeviceType::kVisionPro}};
      config.duration = net::Seconds(15);
      config.enable_reconstruction = false;
      vca::TelepresenceSession session(std::move(config));
      net::Netem netem = session.UplinkNetem(0);
      session.sim().After(net::Seconds(4), [&netem, cap_kbps] {
        netem.SetRateBps(cap_kbps * 1e3);
      });
      session.Run();
      availability = session.BuildReport().participants[1].persona_available_fraction;
    }
    // Webex 2D: the codec adapts its bitrate to the cap instead.
    double webex_after = 0;
    {
      vca::SessionConfig config;
      config.app = vca::VcaApp::kWebex;
      config.participants = {
          {.name = "U1", .metro = "SanFrancisco", .device = vca::DeviceType::kMacBook},
          {.name = "U2", .metro = "NewYork", .device = vca::DeviceType::kMacBook}};
      config.duration = net::Seconds(20);
      vca::TelepresenceSession session(std::move(config));
      net::Netem netem = session.UplinkNetem(0);
      session.sim().After(net::Seconds(4), [&netem, cap_kbps] {
        netem.SetRateBps(cap_kbps * 1e3);
      });
      session.Run();
      webex_after = session.capture(0).MeanThroughputBps(
                        net::Capture::FromNode(session.host(0)), net::Seconds(14),
                        net::Seconds(19)) /
                    1e6;
    }
    return std::make_pair(availability, webex_after);
  });
  for (std::size_t i = 0; i < caps.size(); ++i) {
    table.AddRow({core::Fmt(caps[i], 0), core::Fmt(100 * cap_rows[i].first, 0) + "%",
                  core::Fmt(cap_rows[i].second, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nBelow ~700 Kbps the spatial persona drops out (\"poor connection\"):\n"
               "semantic streams have no quality ladder to adapt down. The 2D pipeline\n"
               "keeps operating by shrinking its bitrate toward the cap.\n";
}

}  // namespace

int main() {
  std::cout << "Reproduction of Section 4.3: what is being delivered?\n";
  RunMeshStreaming();
  RunKeypointStreaming();
  RunDisplayLatency();
  RunRateAdaptation();
  return 0;
}
