// Shared helpers for the figure/table benches.
//
// Every bench prints the same rows/series its paper counterpart reports.
// By default sessions are shorter than the paper's 120 s x >=5 repeats so
// the whole harness runs in minutes; set VTP_FULL=1 for paper-length runs.
//
// Independent (repeat, config) session runs fan out across a thread pool
// sized by VTP_BENCH_THREADS (default: hardware concurrency). Each run owns
// its own Simulator, so results are bit-identical per seed no matter the
// thread count; ParallelRepeats returns them in index order so every bench
// aggregates and prints exactly what the serial harness did.
#pragma once

#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/knobs.h"
#include "core/stats.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "netsim/time.h"

namespace vtp::bench {

/// True when VTP_FULL=1 is set in the environment.
inline bool FullRuns() { return core::knobs::kFull.Get(); }

/// Session length: the paper's 120 s under VTP_FULL, else 20 s.
inline net::SimTime SessionDuration() {
  return FullRuns() ? net::Seconds(120) : net::Seconds(20);
}

/// Repeats per configuration: the paper's 5 under VTP_FULL, else 3.
inline int Repeats() { return FullRuns() ? 5 : 3; }

/// Worker threads for ParallelRepeats: VTP_BENCH_THREADS, whose negative
/// sentinel default means one per hardware thread. 0 or 1 runs serially.
inline int BenchThreads() {
  const int v = core::knobs::kBenchThreads.Get();
  return v < 0 ? static_cast<int>(core::ThreadPool::HardwareThreads()) : v;
}

/// Runs `fn(0) .. fn(n-1)` across BenchThreads() workers and returns the
/// results in index order. Each invocation must be self-contained (own
/// Simulator, own seeds); the index-ordered merge keeps downstream
/// aggregation independent of scheduling.
template <class Fn>
auto ParallelRepeats(int n, Fn&& fn) -> std::vector<decltype(fn(0))> {
  using Result = decltype(fn(0));
  std::vector<Result> results(static_cast<std::size_t>(n < 0 ? 0 : n));
  const int threads = BenchThreads();
  if (threads <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) results[static_cast<std::size_t>(i)] = fn(i);
    return results;
  }
  core::ThreadPool pool(static_cast<unsigned>(threads));
  for (int i = 0; i < n; ++i) {
    pool.Submit([&results, &fn, i] { results[static_cast<std::size_t>(i)] = fn(i); });
  }
  pool.Wait();
  return results;
}

/// Wall-clock stopwatch for perf reporting.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints a section banner.
inline void Banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Formats a Summary as the box-plot row the paper's figures show.
inline std::vector<std::string> BoxRow(const std::string& label, const core::Summary& s,
                                       int precision = 2) {
  return {label,          core::Fmt(s.mean, precision), core::Fmt(s.stddev, precision),
          core::Fmt(s.p5, precision),  core::Fmt(s.p25, precision),
          core::Fmt(s.p50, precision), core::Fmt(s.p75, precision),
          core::Fmt(s.p95, precision)};
}

inline std::vector<std::string> BoxHeader(const std::string& metric) {
  return {metric, "mean", "std", "p5", "p25", "p50", "p75", "p95"};
}

}  // namespace vtp::bench
