// Shared helpers for the figure/table benches.
//
// Every bench prints the same rows/series its paper counterpart reports.
// By default sessions are shorter than the paper's 120 s x >=5 repeats so
// the whole harness runs in minutes; set VTP_FULL=1 for paper-length runs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/stats.h"
#include "core/table.h"
#include "netsim/time.h"

namespace vtp::bench {

/// True when VTP_FULL=1 is set in the environment.
inline bool FullRuns() {
  const char* env = std::getenv("VTP_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Session length: the paper's 120 s under VTP_FULL, else 20 s.
inline net::SimTime SessionDuration() {
  return FullRuns() ? net::Seconds(120) : net::Seconds(20);
}

/// Repeats per configuration: the paper's 5 under VTP_FULL, else 3.
inline int Repeats() { return FullRuns() ? 5 : 3; }

/// Prints a section banner.
inline void Banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Formats a Summary as the box-plot row the paper's figures show.
inline std::vector<std::string> BoxRow(const std::string& label, const core::Summary& s,
                                       int precision = 2) {
  return {label,          core::Fmt(s.mean, precision), core::Fmt(s.stddev, precision),
          core::Fmt(s.p5, precision),  core::Fmt(s.p25, precision),
          core::Fmt(s.p50, precision), core::Fmt(s.p75, precision),
          core::Fmt(s.p95, precision)};
}

inline std::vector<std::string> BoxHeader(const std::string& metric) {
  return {metric, "mean", "std", "p5", "p25", "p50", "p75", "p95"};
}

}  // namespace vtp::bench
