// Figure 6: scalability of the spatial persona with 2-5 Vision Pro users —
// (a) rendered triangles, (b) CPU/GPU processing time per frame, and
// (c) downlink throughput, all measured at U1 across full simulated
// sessions with behavioural viewing.
#include <iostream>
#include <span>

#include "bench/bench_util.h"
#include "vca/session.h"

using namespace vtp;

namespace {

const char* kMetros[] = {"SanFrancisco", "NewYork", "Chicago", "Dallas", "Seattle"};

struct ScalePoint {
  core::Summary triangles;
  core::Summary cpu_ms;
  core::Summary gpu_ms;
  core::Summary downlink_mbps;
  double miss_rate = 0;
};

/// Raw series from one independent session run.
struct RepeatData {
  std::vector<double> tris, cpu, gpu, down;
  double miss = 0;
};

RepeatData RunRepeat(std::size_t users, int repeat) {
  vca::SessionConfig config;
  config.app = vca::VcaApp::kFaceTime;
  for (std::size_t i = 0; i < users; ++i) {
    config.participants.push_back({.name = "U" + std::to_string(i + 1),
                                   .metro = kMetros[i],
                                   .device = vca::DeviceType::kVisionPro});
  }
  config.duration = bench::SessionDuration();
  config.seed = 1000 + static_cast<std::uint64_t>(repeat) * 31 + users;
  config.reconstruct_stride = 9;  // sample the deformation at 10 Hz
  vca::TelepresenceSession session(std::move(config));
  session.Run();

  RepeatData data;
  const render::RenderLoop* loop = session.render_loop(0);
  for (const render::FrameStats& f : loop->frames()) {
    data.tris.push_back(static_cast<double>(f.triangles));
    data.cpu.push_back(f.cpu_ms);
    data.gpu.push_back(f.gpu_ms);
  }
  data.miss = loop->MissRate();

  const net::Capture& cap = session.capture(0);
  const auto filter = net::Capture::ToNode(session.host(0));
  for (net::SimTime t = net::Seconds(3); t + net::kSecond <= bench::SessionDuration();
       t += net::kSecond) {
    data.down.push_back(cap.MeanThroughputBps(filter, t, t + net::kSecond) / 1e6);
  }
  return data;
}

/// Pools repeat runs (in repeat order, so results match a serial harness).
ScalePoint Aggregate(std::span<const RepeatData> runs) {
  std::vector<double> tris, cpu, gpu, down;
  double miss = 0;
  for (const RepeatData& r : runs) {
    tris.insert(tris.end(), r.tris.begin(), r.tris.end());
    cpu.insert(cpu.end(), r.cpu.begin(), r.cpu.end());
    gpu.insert(gpu.end(), r.gpu.begin(), r.gpu.end());
    down.insert(down.end(), r.down.begin(), r.down.end());
    miss += r.miss / static_cast<double>(runs.size());
  }
  return {core::Summarize(tris), core::Summarize(cpu), core::Summarize(gpu),
          core::Summarize(down), miss};
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 6: spatial-persona scalability, 2-5 users.\n"
            << "(each point is " << bench::Repeats() << " full sessions of "
            << net::ToSeconds(bench::SessionDuration()) << " s)\n"
            << "QUIC transport path: "
            << (core::knobs::kQuicPath.Is("legacy") ? "legacy (std::vector/std::map)"
                                                           : "pooled writer + sent-packet ring")
            << "\n";

  // All (users, repeat) sessions are independent; fan the whole grid out at
  // once and aggregate per user count afterwards.
  const int repeats = bench::Repeats();
  std::cout << "  running " << (4 * repeats) << " sessions on " << bench::BenchThreads()
            << " thread(s)...\n";
  const auto runs = bench::ParallelRepeats(4 * repeats, [&](int i) {
    return RunRepeat(static_cast<std::size_t>(2 + i / repeats), i % repeats);
  });
  std::vector<ScalePoint> points;
  for (std::size_t u = 0; u < 4; ++u) {
    points.push_back(Aggregate(std::span<const RepeatData>(
        runs.data() + u * static_cast<std::size_t>(repeats),
        static_cast<std::size_t>(repeats))));
  }

  bench::Banner("Figure 6(a): rendered triangles at U1");
  core::TextTable tri_table;
  tri_table.SetHeader(bench::BoxHeader("users"));
  for (std::size_t u = 0; u < points.size(); ++u) {
    tri_table.AddRow(bench::BoxRow(core::Fmt(static_cast<double>(u + 2), 0),
                                   points[u].triangles, 0));
  }
  tri_table.Print(std::cout);
  std::cout << "\nThe mean grows with the user count while the 5th percentile flattens\n"
               "(visibility-aware optimizations kick in for peripheral personas).\n";

  bench::Banner("Figure 6(b): CPU / GPU time per frame at U1 (ms)");
  core::TextTable time_table;
  time_table.SetHeader({"users", "CPU mean±std", "GPU mean±std", "GPU p95", "deadline misses",
                        "paper CPU", "paper GPU"});
  const char* paper_cpu[] = {"5.67±0.69", "-", "-", "6.76±1.29"};
  const char* paper_gpu[] = {"5.65±0.69", "-", "-", "7.62±1.29 (p95>9)"};
  for (std::size_t u = 0; u < points.size(); ++u) {
    time_table.AddRow({core::Fmt(static_cast<double>(u + 2), 0),
                       core::MeanPlusMinus(points[u].cpu_ms),
                       core::MeanPlusMinus(points[u].gpu_ms),
                       core::Fmt(points[u].gpu_ms.p95, 2),
                       core::Fmt(100 * points[u].miss_rate, 1) + "%", paper_cpu[u],
                       paper_gpu[u]});
  }
  time_table.Print(std::cout);
  std::cout << "\nAt 5 users the GPU p95 approaches the 11.1 ms deadline for 90 FPS —\n"
               "the paper's explanation for FaceTime's 5-persona cap.\n";

  bench::Banner("Figure 6(c): downlink throughput at U1 (Mbps)");
  core::TextTable down_table;
  down_table.SetHeader(bench::BoxHeader("users"));
  for (std::size_t u = 0; u < points.size(); ++u) {
    down_table.AddRow(bench::BoxRow(core::Fmt(static_cast<double>(u + 2), 0),
                                    points[u].downlink_mbps));
  }
  down_table.Print(std::cout);
  std::cout << "\nDownlink grows ~linearly in the user count: the server just forwards\n"
               "every other participant's ~0.7 Mbps semantic stream (§4.5).\n";
  return 0;
}
