// Unified bench JSON report.
//
// Every perf bench used to hand-roll its own JSON tail; JsonReport gives
// them one shape: a shared header block (bench name, build id, knob state,
// thread count) followed by bench-specific sections written through the
// underlying JsonWriter. Reports land at VTP_BENCH_JSON when set, else
// BENCH_<bench>.json, so CI can collect BENCH_*.json uniformly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "core/json.h"
#include "core/knobs.h"

#ifndef VTP_GIT_DESCRIBE
#define VTP_GIT_DESCRIBE "unknown"
#endif

namespace vtp::bench {

class JsonReport {
 public:
  /// Opens the root object and writes the shared header fields.
  explicit JsonReport(std::string bench_name) : name_(std::move(bench_name)) {
    w_.BeginObject();
    w_.Key("bench"); w_.String(name_);
    w_.Key("git"); w_.String(VTP_GIT_DESCRIBE);
    w_.Key("full"); w_.Bool(core::knobs::kFull.Get());
    w_.Key("threads"); w_.Int(BenchThreads());
    w_.Key("obs"); w_.Bool(core::knobs::kObs.Get());
  }

  /// Bench-specific payload goes through the raw writer (the report owns
  /// the root object; callers add keys/sections inside it).
  core::JsonWriter& writer() { return w_; }

  /// Closes the root object, resolves the output path (VTP_BENCH_JSON or
  /// BENCH_<bench>.json), writes the file, and returns the path used.
  /// Under VTP_BENCH_REQUIRE_CLEAN a -dirty build id aborts instead of
  /// writing: committed BENCH_*.json baselines must describe a reproducible
  /// commit, not whatever happened to be in the working tree.
  std::string Write() {
    if (core::knobs::kBenchRequireClean.Get() &&
        std::string(VTP_GIT_DESCRIBE).find("-dirty") != std::string::npos) {
      std::fprintf(stderr,
                   "JsonReport: refusing to write %s report from dirty tree %s "
                   "(VTP_BENCH_REQUIRE_CLEAN is set)\n",
                   name_.c_str(), VTP_GIT_DESCRIBE);
      std::exit(1);
    }
    w_.EndObject();
    std::string path = core::knobs::kBenchJson.Get();
    if (path.empty()) path = "BENCH_" + name_ + ".json";
    std::ofstream(path) << w_.str() << "\n";
    return path;
  }

 private:
  std::string name_;
  core::JsonWriter w_;
};

}  // namespace vtp::bench
