// Ablations for the design choices the paper's discussion calls out:
//
//   1. Server allocation (§4.1/§5): nearest-to-initiator vs geo-distributed
//      servers with a private inter-server backbone — per-user RTT to the
//      assigned server, US-wide and intercontinental.
//   2. Visibility-aware *delivery* (§4.4): how much bandwidth FaceTime
//      leaves on the table by not culling out-of-viewport personas from
//      delivery (it only culls them from rendering).
//   3. Semantic codec (§4.3/§5): the paper's float+LZMA scheme vs a
//      quantized temporal-delta codec (what a rate-adaptable ladder could
//      be built on).
#include <iostream>

#include <cmath>

#include "bench/bench_util.h"
#include "render/scenario.h"
#include "render/viewport_predict.h"
#include "semantic/codec.h"
#include "semantic/generator.h"
#include "transport/tcp_ping.h"
#include "vca/session.h"

using namespace vtp;

namespace {

void RunServerPlacement() {
  bench::Banner("Ablation 1: server allocation strategy (4-user FaceTime)");

  const std::vector<std::string> us_users = {"SanFrancisco", "NewYork", "Miami", "Seattle"};
  const std::vector<std::string> global_users = {"SanFrancisco", "London", "Tokyo", "NewYork"};
  const std::vector<std::string> global_fleet = {"SanJose",  "KansasCity", "Columbus",
                                                 "Ashburn",  "London",     "Frankfurt",
                                                 "Tokyo",    "Singapore"};

  const auto run = [&](const std::vector<std::string>& metros,
                       vca::ServerStrategy strategy,
                       const std::vector<std::string>& fleet) {
    vca::SessionConfig config;
    config.participants.clear();
    for (std::size_t i = 0; i < metros.size(); ++i) {
      config.participants.push_back({.name = "U" + std::to_string(i + 1),
                                     .metro = metros[i],
                                     .device = vca::DeviceType::kVisionPro});
    }
    config.duration = net::Seconds(8);
    config.strategy = strategy;
    config.server_metros_override = fleet;
    config.enable_reconstruction = false;
    config.enable_render = false;
    auto session = std::make_unique<vca::TelepresenceSession>(std::move(config));

    // Measure each user's RTT to its serving node with TCP pings, exactly
    // like Table 1 (server allocation is what we are ablating).
    std::vector<double> rtts(metros.size(), 0);
    std::vector<std::unique_ptr<transport::TcpPinger>> pingers;
    for (std::size_t i = 0; i < metros.size(); ++i) {
      auto pinger = std::make_unique<transport::TcpPinger>(
          &session->network(), session->host(i), static_cast<std::uint16_t>(30000 + i));
      pinger->Run(session->assigned_server_node(i), vca::TelepresenceSession::kProbePort, 5,
                  net::Millis(100), [&rtts, i](std::vector<double> r) {
                    rtts[i] = core::Summarize(r).mean;
                  });
      pingers.push_back(std::move(pinger));
    }
    session->Run();
    return std::make_pair(rtts, session->server_metros_used());
  };

  core::TextTable table;
  table.SetHeader({"scenario", "strategy", "servers", "per-user RTT to server (ms)", "worst"});
  const auto add_row = [&](const char* scenario, const char* strategy,
                           const std::pair<std::vector<double>, std::vector<std::string>>& r) {
    std::string rtt_list, servers;
    double worst = 0;
    for (const double v : r.first) {
      rtt_list += core::Fmt(v, 0) + " ";
      worst = std::max(worst, v);
    }
    for (const std::string& s : r.second) servers += s + " ";
    table.AddRow({scenario, strategy, servers, rtt_list, core::Fmt(worst, 0)});
  };

  struct Scenario {
    const char* scenario;
    const char* strategy_label;
    const std::vector<std::string>* metros;
    vca::ServerStrategy strategy;
    const std::vector<std::string>* fleet;
  };
  const std::vector<std::string> no_fleet;
  const std::vector<Scenario> scenarios = {
      {"US-wide", "nearest-to-initiator", &us_users,
       vca::ServerStrategy::kNearestToInitiator, &no_fleet},
      {"US-wide", "geo-distributed", &us_users, vca::ServerStrategy::kGeoDistributed,
       &no_fleet},
      {"intercontinental", "nearest-to-initiator", &global_users,
       vca::ServerStrategy::kNearestToInitiator, &global_fleet},
      {"intercontinental", "geo-distributed", &global_users,
       vca::ServerStrategy::kGeoDistributed, &global_fleet},
  };
  const auto results = bench::ParallelRepeats(
      static_cast<int>(scenarios.size()), [&](int i) {
        const Scenario& s = scenarios[static_cast<std::size_t>(i)];
        return run(*s.metros, s.strategy, *s.fleet);
      });
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    add_row(scenarios[i].scenario, scenarios[i].strategy_label, results[i]);
  }
  table.Print(std::cout);
  std::cout << "\nA single initiator-side server leaves distant users with ~80 ms (US)\n"
               "to >100 ms (intercontinental) access RTTs; per-user nearest servers cut\n"
               "every user's access to single-digit/teens ms, pushing distance onto the\n"
               "private inter-server backbone (§5's proposed design).\n";
}

void RunDeliveryCulling() {
  bench::Banner("Ablation 2: visibility-aware delivery (bandwidth left on the table)");

  core::TextTable table;
  table.SetHeader({"users", "proxy/out-of-view share", "downlink (Mbps)",
                   "with delivery culling (Mbps)", "avail (culled)"});
  struct CullingRow {
    double downlink[2] = {0, 0};
    double share = 0, avail_culled = 0;
  };
  const auto culling_rows = bench::ParallelRepeats(3, [&](int idx) {
    const std::size_t users = 3 + static_cast<std::size_t>(idx);
    const char* metros[] = {"SanFrancisco", "NewYork", "Chicago", "Dallas", "Seattle"};
    CullingRow out;
    for (int mode = 0; mode < 2; ++mode) {
      vca::SessionConfig config;
      for (std::size_t i = 0; i < users; ++i) {
        config.participants.push_back({.name = "U" + std::to_string(i + 1),
                                       .metro = metros[i],
                                       .device = vca::DeviceType::kVisionPro});
      }
      config.duration = net::Seconds(15);
      config.reconstruct_stride = 18;
      config.delivery_culling = mode == 1;  // the §4.4 extension, for real
      vca::TelepresenceSession session(std::move(config));
      session.Run();
      const vca::SessionReport report = session.BuildReport();
      out.downlink[mode] = report.participants[0].downlink_mbps.mean;
      if (mode == 0) {
        const auto& hist = session.lod_histogram(0);
        std::uint64_t total = 0;
        for (const std::uint64_t h : hist) total += h;
        out.share = total == 0 ? 0
                               : static_cast<double>(hist[static_cast<std::size_t>(
                                     render::LodClass::kProxy)]) /
                                     static_cast<double>(total);
      } else {
        out.avail_culled = report.participants[0].persona_available_fraction;
      }
    }
    return out;
  });
  for (std::size_t users = 3; users <= 5; ++users) {
    const CullingRow& out = culling_rows[users - 3];
    table.AddRow({core::Fmt(static_cast<double>(users), 0),
                  core::Fmt(100 * out.share, 1) + "%", core::Fmt(out.downlink[0], 2),
                  core::Fmt(out.downlink[1], 2),
                  core::Fmt(100 * out.avail_culled, 0) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\nFaceTime culls out-of-viewport personas from *rendering* but still\n"
               "*delivers* them (§4.4). The fourth column is a real implementation of\n"
               "delivery-side culling: receivers unsubscribe invisible personas at the\n"
               "SFU, and the saved bytes never cross the downlink - while the personas\n"
               "that ARE visible stay healthy (last column).\n";
}

void RunSemanticCodecAblation() {
  bench::Banner("Ablation 3: semantic codec design (float+LZ vs quantized delta)");

  struct Mode {
    const char* label;
    semantic::SemanticCodecConfig config;
  };
  const std::vector<Mode> modes = {
      {"float32 + lzr (FaceTime-like, measured)", {}},
      {"float32, no compression", {.quantize_bits = 0, .temporal_delta = false, .lz_compress = false}},
      {"12-bit quantized, spatial delta + lzr",
       {.quantize_bits = 12, .temporal_delta = false, .lz_compress = true}},
      {"12-bit quantized, temporal delta + lzr",
       {.quantize_bits = 12, .temporal_delta = true, .lz_compress = true}},
      {"10-bit quantized, temporal delta + lzr",
       {.quantize_bits = 10, .temporal_delta = true, .lz_compress = true}},
  };

  core::TextTable table;
  table.SetHeader({"codec", "bytes/frame", "Mbps @90FPS", "max error (mm)"});
  const auto codec_rows = bench::ParallelRepeats(
      static_cast<int>(modes.size()), [&](int m) {
        const Mode& mode = modes[static_cast<std::size_t>(m)];
        semantic::KeypointTrackGenerator generator({}, 21);
        semantic::SemanticEncoder encoder(mode.config);
        semantic::SemanticDecoder decoder;
        std::size_t total = 0;
        double max_err_m = 0;
        const int frames = 500;
        for (int i = 0; i < frames; ++i) {
          const auto points = semantic::ExtractSemanticSubset(generator.Next());
          const auto payload = encoder.EncodeFrame(points);
          total += payload.size();
          if (const auto decoded = decoder.DecodeFrame(payload)) {
            for (std::size_t k = 0; k < points.size(); ++k) {
              max_err_m = std::max(
                  max_err_m, static_cast<double>((decoded->points[k] - points[k]).Length()));
            }
          }
        }
        return std::make_pair(static_cast<double>(total) / frames, max_err_m);
      });
  for (std::size_t m = 0; m < modes.size(); ++m) {
    const auto& [per_frame, max_err_m] = codec_rows[m];
    table.AddRow({modes[m].label, core::Fmt(per_frame, 0),
                  core::Fmt(per_frame * 8 * 90 / 1e6, 3), core::Fmt(max_err_m * 1000, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nQuantized temporal deltas cut the semantic stream ~5-10x at sub-mm\n"
               "error — headroom a rate-adaptation ladder could be built on (§5).\n";
}

void RunViewportPrediction() {
  bench::Banner("Ablation 4: viewport prediction error vs horizon (remote rendering)");

  // Natural head-yaw traces from the behavioural model (3 remote personas).
  render::ScenarioConfig config;
  config.remote_personas = 3;
  render::SeatedConversation scenario(config, 77);
  std::vector<render::PoseSample> trace;
  const int frames = bench::FullRuns() ? 90 * 120 : 90 * 40;
  for (int i = 0; i < frames; ++i) {
    const render::FrameView view = scenario.Next();
    trace.push_back({.t_s = i / 90.0,
                     .yaw_deg = std::atan2(view.camera.forward.x, view.camera.forward.z) /
                                render::kRadPerDeg,
                     .pitch_deg = 0});
  }

  core::TextTable table;
  table.SetHeader({"horizon", "hold err (deg)", "linear err", "EMA err", "corresponds to"});
  struct Row {
    double horizon_s;
    const char* meaning;
  };
  const std::vector<Row> rows = {
      {0.011, "one 90 FPS frame"},
      {0.040, "same-metro RTT"},
      {0.080, "US coast-to-coast RTT (Table 1)"},
      {0.160, "intercontinental RTT"},
      {0.500, "heavily impaired path"},
  };
  for (const Row& row : rows) {
    table.AddRow({core::Fmt(row.horizon_s * 1000, 0) + " ms",
                  core::Fmt(render::EvaluatePredictor(render::PredictorKind::kHold, trace,
                                                      row.horizon_s),
                            2),
                  core::Fmt(render::EvaluatePredictor(render::PredictorKind::kLinear, trace,
                                                      row.horizon_s),
                            2),
                  core::Fmt(render::EvaluatePredictor(render::PredictorKind::kEma, trace,
                                                      row.horizon_s),
                            2),
                  row.meaning});
  }
  table.Print(std::cout);
  std::cout << "\nA remote renderer must predict the viewer's head pose one RTT ahead.\n"
               "Error grows ~40x from one frame (11 ms) to an intercontinental RTT and\n"
               "the velocity predictors stop helping past ~300 ms (attention switches\n"
               "are unpredictable). Local reconstruction (what FaceTime ships, §4.3)\n"
               "needs no prediction at all — its latency tolerance is what the §4.3b\n"
               "display-latency experiment measures.\n";
}


void RunFecAblation() {
  bench::Banner("Ablation 5: XOR-FEC on the semantic stream (loss resilience)");

  core::TextTable table;
  table.SetHeader({"loss", "no FEC: avail", "no FEC: Mbps", "FEC k=2: avail", "FEC k=2: Mbps"});
  const std::vector<double> losses = {0.10, 0.20, 0.30, 0.35};
  struct FecRow {
    double avail[2] = {0, 0};
    double mbps[2] = {0, 0};
  };
  const auto fec_rows = bench::ParallelRepeats(
      static_cast<int>(losses.size()), [&](int i) {
    const double loss = losses[static_cast<std::size_t>(i)];
    FecRow out;
    for (int mode = 0; mode < 2; ++mode) {
      vca::SessionConfig config;
      config.participants = {
          {.name = "U1", .metro = "SanFrancisco", .device = vca::DeviceType::kVisionPro},
          {.name = "U2", .metro = "NewYork", .device = vca::DeviceType::kVisionPro}};
      config.duration = net::Seconds(15);
      config.seed = 400 + static_cast<std::uint64_t>(loss * 100);
      config.enable_reconstruction = false;
      config.spatial_fec_k = mode == 0 ? 0 : 2;
      vca::TelepresenceSession session(std::move(config));
      net::Netem netem = session.UplinkNetem(0);
      netem.SetLoss(loss);
      session.Run();
      const vca::SessionReport report = session.BuildReport();
      out.avail[mode] = report.participants[1].persona_available_fraction;
      out.mbps[mode] = report.participants[0].uplink_mbps.mean;
    }
    return out;
  });
  for (std::size_t i = 0; i < losses.size(); ++i) {
    const FecRow& out = fec_rows[i];
    table.AddRow({core::Fmt(100 * losses[i], 0) + "%", core::Fmt(100 * out.avail[0], 0) + "%",
                  core::Fmt(out.mbps[0], 2), core::Fmt(100 * out.avail[1], 0) + "%",
                  core::Fmt(out.mbps[1], 2)});
  }
  table.Print(std::cout);
  std::cout << "\nOne XOR parity per 2 semantic frames repairs single losses per group\n"
               "with zero added latency: the persona survives loss rates that push\n"
               "the unprotected stream below its decode-rate floor (the fragility of\n"
               "Section 4.3, addressed without a rate ladder), at ~50% datagram\n"
               "overhead - still far below any 2D pipeline's bitrate.\n";
}

}  // namespace

int main() {
  std::cout << "Ablations of the design choices identified in the paper.\n";
  RunServerPlacement();
  RunDeliveryCulling();
  RunSemanticCodecAblation();
  RunViewportPrediction();
  RunFecAblation();
  return 0;
}
