// Compression hot-path benchmark: the persistent LzrEncoder (arena match
// finder, fused tokenize+range-encode) against the retained legacy
// compressor (per-call tables, intermediate token vector).
//
//   1. keypoint @ 90 FPS — the workload the paper's spatial persona actually
//      runs: ~900-byte semantic frames, 2,000 of them (the paper's capture
//      length), compressed one frame at a time. This is where the per-call
//      table setup dominated and where the >=3x target applies;
//   2. corpora — random / repetitive / constant / text / mesh-residual
//      streams, checking byte-identity and round-trips away from the sweet
//      spot;
//   3. lazy parser — compressed-size ratios of kLazy vs kGreedy per corpus;
//   4. steady-state allocations — a global operator-new counter around the
//      warm encode loops (EncodeFrameInto and LzrEncoder::CompressInto must
//      not touch the heap once buffers are warm).
//
// Every mode asserts byte-identical decompressed output, and greedy asserts
// byte-identical *compressed* output vs legacy. Results go to
// BENCH_compress.json (override with VTP_BENCH_JSON); `--smoke` shrinks the
// run for CI. Exit is nonzero on any correctness failure, steady-state
// allocation, or keypoint speedup < 1.0.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "compress/lzr.h"
#include "compress/lzr_stream.h"
#include "core/json.h"
#include "mesh/generator.h"
#include "semantic/codec.h"
#include "semantic/generator.h"

using namespace vtp;

// ---- allocation counter -----------------------------------------------------
// Counts every operator-new in the process; the steady-state sections reset
// it around warm loops. Single-threaded bench, but atomic keeps it honest.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Chunks = std::vector<std::vector<std::uint8_t>>;

compress::LzParams GreedyParams() {
  compress::LzParams p;
  p.parser = compress::LzParser::kGreedy;
  return p;
}

compress::LzParams LazyParams() {
  compress::LzParams p;
  p.parser = compress::LzParser::kLazy;
  return p;
}

// ---- workloads --------------------------------------------------------------

/// Raw (pre-compression) semantic payloads: what the persona pipeline hands
/// to lzr every 1/90 s. lz_compress=false so the bench owns the compression.
/// The headline workload is the quantized temporal-delta stream — the
/// paper's §4.3 bandwidth argument compresses keypoint *deltas*; raw float32
/// frames barely compress (ratio ~0.93) and are kept as a secondary workload
/// to show the near-incompressible case.
Chunks KeypointPayloads(int frames, semantic::SemanticCodecConfig config) {
  semantic::KeypointTrackGenerator generator({}, 9);
  config.lz_compress = false;
  semantic::SemanticEncoder encoder(config);
  Chunks out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    out.push_back(encoder.EncodeFrame(semantic::ExtractSemanticSubset(generator.Next())));
  }
  return out;
}

/// Quantized-position residual stream of a head scan, split into per-frame
/// sized chunks: the byte distribution a delta mesh codec would feed lzr.
Chunks MeshResidualChunks(std::size_t triangles, int chunks) {
  const mesh::TriangleMesh head = mesh::GenerateHead(triangles, 11);
  const mesh::Aabb box = head.Bounds();
  const mesh::Vec3 size = box.Size();
  const std::uint32_t grid = (1u << 14) - 1;
  const auto quantize = [&](float v, float lo, float extent) -> std::int32_t {
    return extent <= 0 ? 0
                       : static_cast<std::int32_t>((v - lo) / extent * static_cast<float>(grid));
  };
  std::vector<std::uint8_t> stream;
  std::int32_t prev[3] = {0, 0, 0};
  for (const mesh::Vec3& p : head.positions) {
    const std::int32_t q[3] = {quantize(p.x, box.min.x, size.x), quantize(p.y, box.min.y, size.y),
                               quantize(p.z, box.min.z, size.z)};
    for (int c = 0; c < 3; ++c) {
      const std::int32_t d = q[c] - prev[c];
      prev[c] = q[c];
      const auto zigzag =
          static_cast<std::uint32_t>((static_cast<std::uint32_t>(d) << 1) ^
                                     static_cast<std::uint32_t>(d >> 31));
      compress::PutUleb128(stream, zigzag);
    }
  }
  Chunks out;
  const std::size_t per = stream.size() / static_cast<std::size_t>(chunks) + 1;
  for (std::size_t off = 0; off < stream.size(); off += per) {
    const std::size_t len = std::min(per, stream.size() - off);
    out.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(off),
                     stream.begin() + static_cast<std::ptrdiff_t>(off + len));
  }
  return out;
}

Chunks RandomCorpus(std::size_t chunk_bytes, int chunks) {
  std::mt19937 rng(1234);
  Chunks out;
  for (int c = 0; c < chunks; ++c) {
    std::vector<std::uint8_t> v(chunk_bytes);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng());
    out.push_back(std::move(v));
  }
  return out;
}

Chunks RepetitiveCorpus(std::size_t chunk_bytes, int chunks) {
  std::mt19937 rng(99);
  Chunks out;
  for (int c = 0; c < chunks; ++c) {
    std::vector<std::uint8_t> v;
    v.reserve(chunk_bytes);
    const char* motif = "abcdefg";
    while (v.size() < chunk_bytes) {
      v.push_back(static_cast<std::uint8_t>(motif[v.size() % 7]));
      if (rng() % 257 == 0) v.back() ^= 0x55;  // occasional mutation
    }
    out.push_back(std::move(v));
  }
  return out;
}

Chunks ConstantCorpus(std::size_t chunk_bytes, int chunks) {
  Chunks out;
  for (int c = 0; c < chunks; ++c) out.emplace_back(chunk_bytes, std::uint8_t{0x42});
  return out;
}

Chunks TextCorpus(std::size_t chunk_bytes, int chunks) {
  const std::string paragraph =
      "the spatial persona is delivered as semantic keypoints rather than "
      "rendered video; seventy four tracked points cross the uplink ninety "
      "times a second and the stream has no quality ladder to adapt down. ";
  Chunks out;
  for (int c = 0; c < chunks; ++c) {
    std::vector<std::uint8_t> v;
    v.reserve(chunk_bytes);
    std::size_t i = static_cast<std::size_t>(c) * 17;
    while (v.size() < chunk_bytes) v.push_back(static_cast<std::uint8_t>(paragraph[i++ % paragraph.size()]));
    out.push_back(std::move(v));
  }
  return out;
}

// ---- A/B measurement --------------------------------------------------------

struct WorkloadResult {
  std::string name;
  std::size_t chunks = 0;
  std::size_t input_bytes = 0;
  std::size_t greedy_bytes = 0;
  std::size_t lazy_bytes = 0;
  double legacy_wall_s = 0;
  double new_wall_s = 0;
  bool greedy_identical = true;  ///< new greedy bytes == legacy bytes
  bool roundtrip_ok = true;      ///< greedy + lazy both decode to the input
  bool lazy_not_worse = true;    ///< lazy_bytes <= greedy_bytes
  bool size_exact = true;        ///< CompressedSize == Compress().size()

  double speedup() const { return new_wall_s > 0 ? legacy_wall_s / new_wall_s : 0; }
  double greedy_ratio() const {
    return input_bytes > 0 ? static_cast<double>(greedy_bytes) / static_cast<double>(input_bytes)
                           : 0;
  }
  double lazy_ratio() const {
    return input_bytes > 0 ? static_cast<double>(lazy_bytes) / static_cast<double>(input_bytes)
                           : 0;
  }
};

WorkloadResult RunWorkload(const std::string& name, const Chunks& chunks, int reps) {
  WorkloadResult r;
  r.name = name;
  r.chunks = chunks.size();
  const compress::LzParams greedy = GreedyParams();
  const compress::LzParams lazy = LazyParams();

  // Correctness pass (untimed): greedy byte-identity, both round-trips,
  // counting-sink exactness.
  compress::LzrEncoder encoder;
  std::vector<std::uint8_t> packed, unpacked;
  for (const auto& chunk : chunks) {
    r.input_bytes += chunk.size();
    const std::vector<std::uint8_t> legacy = compress::LzrCompressLegacy(chunk, greedy);
    packed.clear();
    encoder.CompressInto(chunk, packed, greedy);
    r.greedy_bytes += packed.size();
    if (packed != legacy) r.greedy_identical = false;
    if (encoder.CompressedSize(chunk, greedy) != packed.size()) r.size_exact = false;
    compress::LzrDecompressInto(packed, unpacked);
    if (unpacked.size() != chunk.size() ||
        (!chunk.empty() && std::memcmp(unpacked.data(), chunk.data(), chunk.size()) != 0)) {
      r.roundtrip_ok = false;
    }
    packed.clear();
    encoder.CompressInto(chunk, packed, lazy);
    r.lazy_bytes += packed.size();
    compress::LzrDecompressInto(packed, unpacked);
    if (unpacked.size() != chunk.size() ||
        (!chunk.empty() && std::memcmp(unpacked.data(), chunk.data(), chunk.size()) != 0)) {
      r.roundtrip_ok = false;
    }
  }
  r.lazy_not_worse = r.lazy_bytes <= r.greedy_bytes;

  // Timed A/B. Both sides do identical greedy work; only the machinery
  // (per-call tables + token vector vs persistent arena + fused coder)
  // differs. The byte sink keeps the optimizer honest. Reps are interleaved
  // and each side reports its best sweep: this box shares its core, and a
  // neighbour stealing cycles mid-run would otherwise skew whichever side it
  // landed on.
  std::size_t sink = 0;
  compress::LzrEncoder hot;
  std::vector<std::uint8_t> out;
  hot.CompressInto(chunks.front(), out, greedy);  // warm the arena
  double legacy_best = 0, new_best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    {
      const bench::WallTimer timer;
      for (const auto& chunk : chunks) sink += compress::LzrCompressLegacy(chunk, greedy).size();
      const double s = timer.seconds();
      if (rep == 0 || s < legacy_best) legacy_best = s;
    }
    {
      const bench::WallTimer timer;
      for (const auto& chunk : chunks) {
        out.clear();
        hot.CompressInto(chunk, out, greedy);
        sink += out.size();
      }
      const double s = timer.seconds();
      if (rep == 0 || s < new_best) new_best = s;
    }
  }
  r.legacy_wall_s = legacy_best;
  r.new_wall_s = new_best;
  if (sink == 0) std::cout << "";  // defeat dead-code elimination
  return r;
}

// ---- steady-state allocations ----------------------------------------------

struct AllocResult {
  std::uint64_t raw_encode_allocs = 0;    ///< LzrEncoder::CompressInto, warm
  std::uint64_t frame_encode_allocs = 0;  ///< SemanticEncoder::EncodeFrameInto, warm
  std::uint64_t decode_allocs = 0;        ///< LzrDecompressInto, warm buffer
  std::uint64_t frames = 0;
  compress::MatchFinder::Stats finder;
  compress::LzrEncoder::IoStats io;  ///< the frame encoder's byte/token flow
};

AllocResult MeasureSteadyStateAllocs(const Chunks& payloads, int frames) {
  AllocResult r;
  r.frames = static_cast<std::uint64_t>(frames);

  // Raw lzr path: compress warm payloads into a reused buffer.
  compress::LzrEncoder encoder;
  std::vector<std::uint8_t> out, decoded;
  for (const auto& p : payloads) {  // warm arena, scratch, and output capacity
    out.clear();
    encoder.CompressInto(p, out);
    compress::LzrDecompressInto(out, decoded);
  }
  g_allocs.store(0, std::memory_order_relaxed);
  for (int i = 0; i < frames; ++i) {
    out.clear();
    encoder.CompressInto(payloads[static_cast<std::size_t>(i) % payloads.size()], out);
  }
  r.raw_encode_allocs = g_allocs.load(std::memory_order_relaxed);

  g_allocs.store(0, std::memory_order_relaxed);
  for (int i = 0; i < frames; ++i) {
    out.clear();
    encoder.CompressInto(payloads[static_cast<std::size_t>(i) % payloads.size()], out);
    compress::LzrDecompressInto(out, decoded);
  }
  r.decode_allocs = g_allocs.load(std::memory_order_relaxed);

  // Full semantic path: pre-generated subsets -> EncodeFrameInto.
  semantic::KeypointTrackGenerator generator({}, 21);
  std::vector<std::vector<semantic::Vec3>> subsets;
  for (int i = 0; i < frames; ++i) {
    subsets.push_back(semantic::ExtractSemanticSubset(generator.Next()));
  }
  semantic::SemanticEncoder frame_encoder;
  for (const auto& s : subsets) frame_encoder.EncodeFrameInto(s, out);  // warm
  g_allocs.store(0, std::memory_order_relaxed);
  for (const auto& s : subsets) frame_encoder.EncodeFrameInto(s, out);
  r.frame_encode_allocs = g_allocs.load(std::memory_order_relaxed);
  r.finder = frame_encoder.lzr().finder_stats();
  r.io = frame_encoder.lzr().io_stats();
  return r;
}

// ---- output -----------------------------------------------------------------

void WriteWorkload(core::JsonWriter& w, const WorkloadResult& r) {
  w.BeginObject();
  w.Key("chunks"); w.Int(static_cast<std::int64_t>(r.chunks));
  w.Key("input_bytes"); w.Int(static_cast<std::int64_t>(r.input_bytes));
  w.Key("greedy_bytes"); w.Int(static_cast<std::int64_t>(r.greedy_bytes));
  w.Key("lazy_bytes"); w.Int(static_cast<std::int64_t>(r.lazy_bytes));
  w.Key("greedy_ratio"); w.Number(r.greedy_ratio());
  w.Key("lazy_ratio"); w.Number(r.lazy_ratio());
  w.Key("legacy_wall_s"); w.Number(r.legacy_wall_s);
  w.Key("new_wall_s"); w.Number(r.new_wall_s);
  w.Key("speedup"); w.Number(r.speedup());
  w.Key("greedy_identical"); w.Bool(r.greedy_identical);
  w.Key("roundtrip_ok"); w.Bool(r.roundtrip_ok);
  w.Key("lazy_not_worse"); w.Bool(r.lazy_not_worse);
  w.Key("counting_size_exact"); w.Bool(r.size_exact);
  w.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int frames = smoke ? 300 : 2000;  // paper capture: 2,000 frames
  const int reps = smoke ? 3 : 12;
  const std::size_t corpus_chunk = smoke ? (8u << 10) : (32u << 10);
  const int corpus_chunks = smoke ? 4 : 8;

  std::cout << "Compression hot-path benchmark: persistent LzrEncoder vs legacy"
            << (smoke ? " (smoke)" : "") << "\n";

  bench::Banner("1. semantic keypoints @ 90 FPS (" + std::to_string(frames) + " frames, " +
                std::to_string(reps) + " reps)");
  // The headline stream: 11-bit quantized temporal deltas, the payload the
  // paper's bandwidth argument actually compresses at 90 FPS.
  const Chunks keypoints =
      KeypointPayloads(frames, {.quantize_bits = 11, .temporal_delta = true});
  const WorkloadResult kp = RunWorkload("keypoint_90fps_delta", keypoints, reps);

  std::vector<WorkloadResult> results;
  results.push_back(kp);
  results.push_back(RunWorkload("keypoint_90fps_raw_floats", KeypointPayloads(frames, {}), reps));

  bench::Banner("2. corpora (random / repetitive / constant / text / mesh residuals)");
  results.push_back(RunWorkload("random", RandomCorpus(corpus_chunk, corpus_chunks), reps));
  results.push_back(RunWorkload("repetitive", RepetitiveCorpus(corpus_chunk, corpus_chunks), reps));
  results.push_back(RunWorkload("constant", ConstantCorpus(corpus_chunk, corpus_chunks), reps));
  results.push_back(RunWorkload("text", TextCorpus(corpus_chunk, corpus_chunks), reps));
  results.push_back(
      RunWorkload("mesh_residuals", MeshResidualChunks(smoke ? 10000 : 30000, 16), reps));

  core::TextTable table;
  table.SetHeader({"workload", "in (KB)", "greedy ratio", "lazy ratio", "legacy (s)", "new (s)",
                   "speedup", "identical", "roundtrip"});
  bool correctness_ok = true;
  for (const WorkloadResult& r : results) {
    correctness_ok = correctness_ok && r.greedy_identical && r.roundtrip_ok &&
                     r.lazy_not_worse && r.size_exact;
    table.AddRow({r.name, core::Fmt(static_cast<double>(r.input_bytes) / 1024.0, 0),
                  core::Fmt(r.greedy_ratio(), 3), core::Fmt(r.lazy_ratio(), 3),
                  core::Fmt(r.legacy_wall_s, 3), core::Fmt(r.new_wall_s, 3),
                  core::Fmt(r.speedup(), 2) + "x", r.greedy_identical ? "yes" : "NO",
                  r.roundtrip_ok ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nkeypoint workload: " << core::Fmt(kp.speedup(), 2)
            << "x the legacy compressor (target: >=3x).\n";

  bench::Banner("3. steady-state allocations (warm buffers, " + std::to_string(frames) +
                " frames)");
  const AllocResult allocs = MeasureSteadyStateAllocs(keypoints, frames);
  std::cout << "LzrEncoder::CompressInto:        " << allocs.raw_encode_allocs << " allocs\n"
            << "encode + LzrDecompressInto:      " << allocs.decode_allocs << " allocs\n"
            << "SemanticEncoder::EncodeFrameInto: " << allocs.frame_encode_allocs << " allocs\n"
            << "match-finder arena: " << allocs.finder.arena_grows << " grows over "
            << allocs.finder.resets << " resets, "
            << core::Fmt(static_cast<double>(allocs.finder.arena_bytes) / 1024.0, 0) << " KB\n";
  const bool alloc_free = allocs.raw_encode_allocs == 0 && allocs.frame_encode_allocs == 0 &&
                          allocs.decode_allocs == 0;

  const double hit_rate =
      allocs.io.literals + allocs.io.matches > 0
          ? static_cast<double>(allocs.io.matches) /
                static_cast<double>(allocs.io.literals + allocs.io.matches)
          : 0;
  std::cout << "encoder io: " << allocs.io.bytes_in << " B in -> " << allocs.io.bytes_out
            << " B out, match hit rate " << core::Fmt(100 * hit_rate, 1) << "%\n";

  // ---- JSON ---------------------------------------------------------------
  bench::JsonReport report("compress");
  core::JsonWriter& w = report.writer();
  w.Key("smoke"); w.Bool(smoke);
  w.Key("frames"); w.Int(frames);
  w.Key("reps"); w.Int(reps);
  w.Key("workloads");
  w.BeginObject();
  for (const WorkloadResult& r : results) {
    w.Key(r.name);
    WriteWorkload(w, r);
  }
  w.EndObject();
  w.Key("keypoint_speedup"); w.Number(kp.speedup());
  w.Key("speedup_target"); w.Number(3.0);
  w.Key("steady_state");
  w.BeginObject();
  w.Key("frames"); w.Int(static_cast<std::int64_t>(allocs.frames));
  w.Key("raw_encode_allocs"); w.Int(static_cast<std::int64_t>(allocs.raw_encode_allocs));
  w.Key("encode_decode_allocs"); w.Int(static_cast<std::int64_t>(allocs.decode_allocs));
  w.Key("frame_encode_allocs"); w.Int(static_cast<std::int64_t>(allocs.frame_encode_allocs));
  w.Key("finder_arena_grows"); w.Int(static_cast<std::int64_t>(allocs.finder.arena_grows));
  w.Key("finder_resets"); w.Int(static_cast<std::int64_t>(allocs.finder.resets));
  w.Key("finder_arena_bytes"); w.Int(static_cast<std::int64_t>(allocs.finder.arena_bytes));
  w.EndObject();
  w.Key("encoder_io");
  w.BeginObject();
  w.Key("bytes_in"); w.Int(static_cast<std::int64_t>(allocs.io.bytes_in));
  w.Key("bytes_out"); w.Int(static_cast<std::int64_t>(allocs.io.bytes_out));
  w.Key("literals"); w.Int(static_cast<std::int64_t>(allocs.io.literals));
  w.Key("matches"); w.Int(static_cast<std::int64_t>(allocs.io.matches));
  w.Key("match_hit_rate"); w.Number(hit_rate);
  w.EndObject();
  w.Key("correctness_ok"); w.Bool(correctness_ok);
  w.Key("alloc_free"); w.Bool(alloc_free);

  const std::string path = report.Write();
  std::cout << "\nwrote " << path << "\n";

  if (!correctness_ok) std::cout << "FAIL: correctness checks failed\n";
  if (!alloc_free) std::cout << "FAIL: steady-state encode allocated\n";
  if (kp.speedup() < 1.0) std::cout << "FAIL: keypoint speedup < 1.0\n";
  return correctness_ok && alloc_free && kp.speedup() >= 1.0 ? 0 : 1;
}
