// Figure 4: uplink throughput of two-party sessions for FaceTime with
// spatial persona (F), FaceTime with 2D persona (F*), Zoom (Z), Webex (W),
// and Teams (T). Each box is built from 1-second throughput bins captured
// at U1's access point, exactly as the paper measures (§3.2, §4.2).
#include <iostream>

#include "bench/bench_util.h"
#include "vca/session.h"

using namespace vtp;

namespace {

struct Config {
  const char* label;
  vca::VcaApp app;
  vca::DeviceType u2_device;
};

/// One independent session run; returns the 1-second throughput bins.
std::vector<double> RunRepeat(const Config& config, int repeat) {
  vca::SessionConfig session_config;
  session_config.app = config.app;
  session_config.participants = {
      {.name = "U1", .metro = "SanFrancisco", .device = vca::DeviceType::kVisionPro},
      {.name = "U2", .metro = "NewYork", .device = config.u2_device}};
  session_config.duration = bench::SessionDuration();
  session_config.seed = 100 + static_cast<std::uint64_t>(repeat);
  session_config.enable_reconstruction = false;  // throughput-only runs
  vca::TelepresenceSession session(std::move(session_config));
  session.Run();
  // Collect the per-second series (the report keeps the summary; rebuild
  // the bins from the capture for the pooled box).
  std::vector<double> bins;
  const net::Capture& cap = session.capture(0);
  const auto filter = net::Capture::FromNode(session.host(0));
  for (net::SimTime t = net::Seconds(3); t + net::kSecond <= bench::SessionDuration();
       t += net::kSecond) {
    bins.push_back(cap.MeanThroughputBps(filter, t, t + net::kSecond) / 1e6);
  }
  return bins;
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 4: two-party uplink throughput (Mbps).\n"
            << "(F = FaceTime spatial, F* = FaceTime 2D persona, Z = Zoom, W = Webex,"
            << " T = Teams)\n";

  const std::vector<Config> configs = {
      {"F  (spatial persona)", vca::VcaApp::kFaceTime, vca::DeviceType::kVisionPro},
      {"F* (2D persona)", vca::VcaApp::kFaceTime, vca::DeviceType::kMacBook},
      {"Z  (Zoom 640x360)", vca::VcaApp::kZoom, vca::DeviceType::kMacBook},
      {"W  (Webex 1920x1080)", vca::VcaApp::kWebex, vca::DeviceType::kMacBook},
      {"T  (Teams 1280x720)", vca::VcaApp::kTeams, vca::DeviceType::kMacBook},
  };

  bench::Banner("Figure 4: uplink throughput per application (Mbps)");
  core::TextTable table;
  table.SetHeader(bench::BoxHeader("config"));
  // Every (config, repeat) session is independent: fan all of them out at
  // once and pool each config's bins in repeat order afterwards, so the boxes
  // match a serial run bit for bit.
  const int repeats = bench::Repeats();
  const auto runs = bench::ParallelRepeats(
      static_cast<int>(configs.size()) * repeats, [&](int i) {
        return RunRepeat(configs[static_cast<std::size_t>(i / repeats)], i % repeats);
      });
  core::Summary spatial, webex;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::vector<double> bins;
    for (int r = 0; r < repeats; ++r) {
      const std::vector<double>& run = runs[i * static_cast<std::size_t>(repeats) +
                                            static_cast<std::size_t>(r)];
      bins.insert(bins.end(), run.begin(), run.end());
    }
    const core::Summary s = core::Summarize(bins);
    if (std::string(configs[i].label).starts_with("F ")) spatial = s;
    if (std::string(configs[i].label).starts_with("W")) webex = s;
    table.AddRow(bench::BoxRow(configs[i].label, s));
  }
  table.Print(std::cout);

  std::cout << "\nPaper's headline (§4.2): spatial persona ~0.67 Mbps — LOWER than every\n"
            << "2D pipeline (Webex >4 Mbps). Measured here: spatial "
            << core::Fmt(spatial.mean, 2) << " Mbps vs Webex " << core::Fmt(webex.mean, 2)
            << " Mbps (" << core::Fmt(webex.mean / std::max(spatial.mean, 1e-9), 1)
            << "x).\n";
  return 0;
}
