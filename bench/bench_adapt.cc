// Adaptive-delivery robustness bench: the §4.3d uplink-cap sweep with the
// VTP_ADAPT control loop on vs off, plus a Gilbert-Elliott burst-loss
// recovery scenario.
//
// The paper's finding (§4.3d) is that FaceTime's spatial persona has no
// rate ladder: capping the uplink below ~700 Kbps kills it. The adaptive
// controller is the counterfactual — with VTP_ADAPT=1 the persona must
// stay available all the way down to 200 Kbps (the freeze/coarse rungs
// fit under the cap). CI gates on:
//
//   * adaptive steady-state availability == 100% at every cap down to
//     200 Kbps;
//   * the non-adaptive cliff is intact (alive at 1200, dead at <=500);
//   * a 4-second Gilbert-Elliott burst-loss episode recovers to full
//     availability within the bounded hold-down schedule.
//
// Steady state is measured over the tail window of each run, after the
// cap-transient (panic overshoot + queue drain + probe climb, ~10-15 s)
// has settled. `--smoke` trims the cap list and durations for CI.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "netsim/netem.h"
#include "transport/adapt.h"
#include "vca/session.h"

using namespace vtp;

namespace {

struct CapRun {
  double cap_kbps = 0;
  bool adaptive = false;
  double steady_availability = 0;   // fraction of tail-window samples available
  double overall_availability = 0;  // whole-run report fraction (incl. transient)
  std::uint64_t frames_decoded = 0;
  int final_level = 0;
  std::string final_level_name = "-";
  std::uint64_t downswitches = 0;
  std::uint64_t upswitches = 0;
  std::uint64_t probe_failures = 0;
};

// Samples U2's view of U1's persona at 10 Hz over [duration - window, duration).
void ScheduleAvailabilitySampling(vca::TelepresenceSession& session, net::SimTime duration,
                                  net::SimTime window, int* available, int* total) {
  for (net::SimTime t = duration - window; t < duration; t += net::Millis(100)) {
    session.sim().At(t, [&session, available, total] {
      ++*total;
      if (session.spatial_receiver(1)->PersonaAvailable(0, session.sim().now())) {
        ++*available;
      }
    });
  }
}

void FillControllerStats(const vca::TelepresenceSession& session, CapRun* run) {
  if (const transport::AdaptController* ctl = session.adapt_controller(0)) {
    run->final_level = ctl->level();
    run->final_level_name = ctl->level_spec().name;
    run->downswitches = ctl->downswitches();
    run->upswitches = ctl->upswitches();
    run->probe_failures = ctl->probe_failures();
  }
}

CapRun RunCappedSession(double cap_kbps, bool adaptive, net::SimTime duration,
                        net::SimTime window) {
  vca::TelepresenceSession session(vca::TwoPartySpatialConfig(duration));
  net::Netem netem = session.UplinkNetem(0);
  session.sim().After(net::Seconds(4), [&netem, cap_kbps] {
    netem.SetRateBps(cap_kbps * 1e3);
  });
  int available = 0, total = 0;
  ScheduleAvailabilitySampling(session, duration, window, &available, &total);
  session.Run();

  CapRun run;
  run.cap_kbps = cap_kbps;
  run.adaptive = adaptive;
  run.steady_availability = total > 0 ? static_cast<double>(available) / total : 0;
  run.overall_availability =
      session.BuildReport().participants[1].persona_available_fraction;
  run.frames_decoded = session.spatial_receiver(1)->remote(0).frames_decoded;
  FillControllerStats(session, &run);
  return run;
}

struct BurstRun {
  double steady_availability = 0;
  double recovery_s = -1;  // time from fault clear to last unavailable sample
  std::uint64_t downswitches = 0;
  std::uint64_t upswitches = 0;
  int final_level = 0;
  std::string final_level_name = "-";
};

// Uncapped uplink, but a Gilbert-Elliott episode (mean burst 5 pkts, 100%
// in-burst loss) between t=8s and t=12s. The controller must walk down
// during the episode and probe back up afterwards.
BurstRun RunBurstEpisode(net::SimTime duration, net::SimTime window) {
  vca::TelepresenceSession session(vca::TwoPartySpatialConfig(duration));
  net::Netem netem = session.UplinkNetem(0);
  session.sim().After(net::Seconds(8), [&netem] {
    netem.SetBurstLoss({.p_enter = 0.2, .p_exit = 0.2, .loss_bad = 1.0});
  });
  session.sim().After(net::Seconds(12), [&netem] { netem.ClearBurstLoss(); });

  int available = 0, total = 0;
  ScheduleAvailabilitySampling(session, duration, window, &available, &total);
  // Track how long after the fault clears the persona still reads
  // unavailable (the recovery transient).
  auto last_unavailable = std::make_shared<net::SimTime>(net::Seconds(12));
  for (net::SimTime t = net::Seconds(12); t < duration; t += net::Millis(100)) {
    session.sim().At(t, [&session, last_unavailable] {
      if (!session.spatial_receiver(1)->PersonaAvailable(0, session.sim().now())) {
        *last_unavailable = session.sim().now();
      }
    });
  }
  session.Run();

  BurstRun run;
  run.steady_availability = total > 0 ? static_cast<double>(available) / total : 0;
  run.recovery_s = net::ToSeconds(*last_unavailable - net::Seconds(12));
  if (const transport::AdaptController* ctl = session.adapt_controller(0)) {
    run.downswitches = ctl->downswitches();
    run.upswitches = ctl->upswitches();
    run.final_level = ctl->level();
    run.final_level_name = ctl->level_spec().name;
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const net::SimTime duration = smoke ? net::Seconds(32) : net::Seconds(40);
  const net::SimTime window = smoke ? net::Seconds(8) : net::Seconds(10);
  const std::vector<double> caps = smoke
                                       ? std::vector<double>{1200.0, 700.0, 200.0}
                                       : std::vector<double>{1200.0, 900.0, 700.0,
                                                             500.0, 350.0, 200.0};

  std::cout << "Adaptive-delivery robustness bench" << (smoke ? " (smoke)" : "")
            << "\nCap sweep: " << net::ToSeconds(duration) << " s sessions, cap at t=4 s, "
            << "steady state = last " << net::ToSeconds(window) << " s\n";

  // VTP_ADAPT is read at session construction, so each mode runs as its own
  // batch with the knob pinned before any worker thread spawns.
  std::vector<CapRun> fixed_runs, adaptive_runs;
  for (const bool adaptive : {false, true}) {
    setenv("VTP_ADAPT", adaptive ? "1" : "0", 1);
    auto runs = bench::ParallelRepeats(static_cast<int>(caps.size()), [&](int i) {
      return RunCappedSession(caps[static_cast<std::size_t>(i)], adaptive, duration,
                              window);
    });
    (adaptive ? adaptive_runs : fixed_runs) = std::move(runs);
  }

  bench::Banner("cap sweep: steady-state persona availability");
  core::TextTable table;
  table.SetHeader({"cap (Kbps)", "fixed avail", "adaptive avail", "adaptive level",
                   "down/up/probe-fail", "frames decoded"});
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const CapRun& f = fixed_runs[i];
    const CapRun& a = adaptive_runs[i];
    table.AddRow({core::Fmt(caps[i], 0), core::Fmt(100 * f.steady_availability, 0) + "%",
                  core::Fmt(100 * a.steady_availability, 0) + "%",
                  "L" + std::to_string(a.final_level) + " (" + a.final_level_name + ")",
                  std::to_string(a.downswitches) + "/" + std::to_string(a.upswitches) +
                      "/" + std::to_string(a.probe_failures),
                  std::to_string(a.frames_decoded)});
  }
  table.Print(std::cout);

  bench::Banner("burst loss: 4 s Gilbert-Elliott episode, adaptive recovery");
  setenv("VTP_ADAPT", "1", 1);
  const BurstRun burst = RunBurstEpisode(duration, window);
  unsetenv("VTP_ADAPT");
  std::cout << "steady availability " << core::Fmt(100 * burst.steady_availability, 0)
            << "%, recovered " << core::Fmt(burst.recovery_s, 1)
            << " s after fault cleared, downswitches " << burst.downswitches
            << ", upswitches " << burst.upswitches << ", final L" << burst.final_level
            << " (" << burst.final_level_name << ")\n";

  // ---- gates --------------------------------------------------------------
  bool ok = true;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (adaptive_runs[i].steady_availability < 0.999) {
      std::cout << "FAIL: adaptive persona not fully available at "
                << core::Fmt(caps[i], 0) << " Kbps ("
                << core::Fmt(100 * adaptive_runs[i].steady_availability, 1) << "%)\n";
      ok = false;
    }
    // The paper's cliff must stay reproduced with the knob off: alive well
    // above ~700 Kbps, dead well below. 700 itself is borderline — ungated.
    if (caps[i] >= 900.0 && fixed_runs[i].steady_availability < 0.99) {
      std::cout << "FAIL: non-adaptive persona should survive "
                << core::Fmt(caps[i], 0) << " Kbps\n";
      ok = false;
    }
    if (caps[i] <= 500.0 && fixed_runs[i].steady_availability > 0.10) {
      std::cout << "FAIL: non-adaptive cliff gone at " << core::Fmt(caps[i], 0)
                << " Kbps (" << core::Fmt(100 * fixed_runs[i].steady_availability, 1)
                << "% available)\n";
      ok = false;
    }
  }
  if (burst.steady_availability < 0.999) {
    std::cout << "FAIL: burst-loss episode did not recover to full availability\n";
    ok = false;
  }
  if (burst.downswitches == 0 || burst.upswitches == 0) {
    std::cout << "FAIL: burst-loss episode did not exercise the controller\n";
    ok = false;
  }

  // ---- JSON ---------------------------------------------------------------
  bench::JsonReport report("adapt");
  core::JsonWriter& w = report.writer();
  w.Key("smoke"); w.Bool(smoke);
  w.Key("duration_s"); w.Number(net::ToSeconds(duration));
  w.Key("steady_window_s"); w.Number(net::ToSeconds(window));
  w.Key("cap_sweep");
  w.BeginArray();
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const CapRun& f = fixed_runs[i];
    const CapRun& a = adaptive_runs[i];
    w.BeginObject();
    w.Key("cap_kbps"); w.Number(caps[i]);
    w.Key("fixed_steady_availability"); w.Number(f.steady_availability);
    w.Key("fixed_overall_availability"); w.Number(f.overall_availability);
    w.Key("adaptive_steady_availability"); w.Number(a.steady_availability);
    w.Key("adaptive_overall_availability"); w.Number(a.overall_availability);
    w.Key("adaptive_final_level"); w.Int(a.final_level);
    w.Key("adaptive_final_level_name"); w.String(a.final_level_name);
    w.Key("adaptive_downswitches"); w.Int(static_cast<std::int64_t>(a.downswitches));
    w.Key("adaptive_upswitches"); w.Int(static_cast<std::int64_t>(a.upswitches));
    w.Key("adaptive_probe_failures");
    w.Int(static_cast<std::int64_t>(a.probe_failures));
    w.Key("adaptive_frames_decoded");
    w.Int(static_cast<std::int64_t>(a.frames_decoded));
    w.EndObject();
  }
  w.EndArray();
  w.Key("burst_recovery");
  w.BeginObject();
  w.Key("steady_availability"); w.Number(burst.steady_availability);
  w.Key("recovery_s"); w.Number(burst.recovery_s);
  w.Key("downswitches"); w.Int(static_cast<std::int64_t>(burst.downswitches));
  w.Key("upswitches"); w.Int(static_cast<std::int64_t>(burst.upswitches));
  w.Key("final_level"); w.Int(burst.final_level);
  w.EndObject();
  w.Key("gates_passed"); w.Bool(ok);

  const std::string path = report.Write();
  std::cout << "\nwrote " << path << "\n";
  if (ok) std::cout << "all gates passed\n";
  return ok ? 0 : 1;
}
