// Simulation-core microbenchmark: the timer-wheel/event-pool scheduler and
// the pooled packet buffers against the legacy heap-of-std::function engine.
//
//   1. event churn  — self-rescheduling timer chains with realistic (~40 B)
//      captures plus a sprinkle of far timers that exercise the outer wheel
//      levels and the overflow heap;
//   2. packet churn — a UDP blast across a small topology, exercising link
//      transmission, forwarding, and pooled payload recycling;
//   3. session A/B  — a 3-user FaceTime session run under both schedulers,
//      checking the reports agree bit for bit and timing the difference.
//
//   4. obs A/B      — the same session with frame-lifecycle tracing armed
//      (VTP_OBS=1, the default) vs disarmed; the throughput overhead must
//      stay within the observability budget (<3% target, >5% fails).
//
// Results always go to BENCH_simcore.json (override the path with
// VTP_BENCH_JSON) so perf regressions are machine-checkable.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "netsim/network.h"
#include "netsim/packet_buffer.h"
#include "vca/session.h"

using namespace vtp;

namespace {

const char* SchedulerName(net::Simulator::Scheduler s) {
  return s == net::Simulator::Scheduler::kWheel ? "wheel" : "heap";
}

// ---- 1. event churn -------------------------------------------------------

struct ChurnStats {
  double wall_s = 0;
  std::uint64_t events = 0;
  net::SchedulerStats sched;
  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
  double allocs_per_event() const {
    return events == 0 ? 0
                       : static_cast<double>(sched.callback_heap_allocs + sched.pool_slabs) /
                             static_cast<double>(events);
  }
};

/// A self-rescheduling timer. The padding brings the capture to the size of
/// a typical delivery event (a Packet plus a pointer), which is what decides
/// whether an engine allocates per event.
struct Chain {
  net::Simulator* sim;
  net::SimTime horizon;
  std::uint64_t salt;
  std::uint64_t payload[2];  // realistic capture size (~40 B total)

  void operator()() {
    salt = salt * 6364136223846793005ULL + 1442695040888963407ULL;
    payload[0] ^= salt;
    if (sim->now() >= horizon) return;
    const net::SimTime delay = 1 + static_cast<net::SimTime>(salt % net::Micros(150));
    if (salt % 512 == 0) {
      // Occasional long timer: lands in an outer wheel level or the overflow
      // heap, like a session-teardown or stats timer would.
      sim->After(net::Seconds(2), [] {});
    }
    sim->After(delay, *this);
  }
};

ChurnStats RunEventChurn(net::Simulator::Scheduler scheduler) {
  net::Simulator sim(42, scheduler);
  constexpr int kChains = 64;
  const net::SimTime horizon = net::Seconds(2);
  for (int i = 0; i < kChains; ++i) {
    Chain c{&sim, horizon, 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(i + 1), {}};
    sim.After(1 + net::Micros(i), std::move(c));
  }
  const bench::WallTimer timer;
  sim.RunUntil(horizon + net::Seconds(3));  // drain the far timers too
  ChurnStats out;
  out.wall_s = timer.seconds();
  out.events = sim.events_executed();
  out.sched = sim.scheduler_stats();
  return out;
}

// ---- 2. packet churn ------------------------------------------------------

struct PacketChurnStats {
  double wall_s = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t events = 0;
  net::PacketPoolStats pool;
  double packets_per_sec() const { return wall_s > 0 ? packets_sent / wall_s : 0; }
  double pool_hit_rate() const {
    return pool.allocations == 0
               ? 0
               : static_cast<double>(pool.pool_hits) / static_cast<double>(pool.allocations);
  }
};

struct Blaster {
  net::Network* net;
  net::NodeId src, dst;
  std::uint32_t remaining;
  net::SimTime gap;

  void operator()() {
    if (remaining == 0) return;
    --remaining;
    net::PacketBuffer payload(972);  // the spatial persona's datagram size
    net->SendUdp(src, 5000, dst, 5000, std::move(payload));
    net->sim().After(gap, *this);
  }
};

PacketChurnStats RunPacketChurn(net::Simulator::Scheduler scheduler) {
  net::Simulator sim(7, scheduler);
  net::Network network(&sim);
  const net::NodeId a = network.AddNode("a", {37.7, -122.4}, net::Region::kWestUs, false);
  const net::NodeId r = network.AddNode("r", {39.1, -94.6}, net::Region::kMiddleUs, true);
  const net::NodeId b = network.AddNode("b", {40.7, -74.0}, net::Region::kEastUs, false);
  net::LinkConfig cfg;
  cfg.rate_bps = 1e9;
  cfg.prop_delay = net::Millis(5);
  network.Connect(a, r, cfg);
  network.Connect(r, b, cfg);
  network.ComputeRoutes();

  PacketChurnStats out;
  network.BindUdp(b, 5000, [&out](const net::Packet&) { ++out.packets_delivered; });

  constexpr std::uint32_t kPackets = 200000;
  out.packets_sent = kPackets;
  sim.At(1, Blaster{&network, a, b, kPackets, net::Micros(40)});

  net::PacketPool::ThreadLocal().ResetStats();
  const bench::WallTimer timer;
  sim.Run();
  out.wall_s = timer.seconds();
  out.events = sim.events_executed();
  out.pool = net::PacketPool::ThreadLocal().stats();
  return out;
}

// ---- 3. session A/B -------------------------------------------------------

struct SessionRun {
  double wall_s = 0;
  std::uint64_t events = 0;
  double uplink_mbps = 0;
  double downlink_mbps = 0;
  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
};

/// The Figure 6 extreme: a 5-user all-Vision-Pro FaceTime session (FaceTime's
/// persona cap), transport-only so the scheduler share of the wall time is
/// what the fig6 sweeps actually pay per session.
SessionRun RunSession(net::Simulator::Scheduler scheduler, bool obs = true) {
  setenv("VTP_SIM_SCHEDULER", SchedulerName(scheduler), 1);
  setenv("VTP_OBS", obs ? "1" : "0", 1);
  const char* metros[] = {"SanFrancisco", "NewYork", "Chicago", "Dallas", "Seattle"};
  vca::SessionConfig config;
  config.app = vca::VcaApp::kFaceTime;
  for (int i = 0; i < 5; ++i) {
    config.participants.push_back({.name = "U" + std::to_string(i + 1),
                                   .metro = metros[i],
                                   .device = vca::DeviceType::kVisionPro});
  }
  config.duration = net::Seconds(8);
  config.seed = 4242;
  config.enable_reconstruction = false;
  config.enable_render = false;
  const bench::WallTimer timer;
  vca::TelepresenceSession session(std::move(config));
  session.Run();
  const vca::SessionReport report = session.BuildReport();
  SessionRun out;
  out.wall_s = timer.seconds();
  out.events = session.sim().events_executed();
  out.uplink_mbps = report.participants[0].uplink_mbps.mean;
  out.downlink_mbps = report.participants[0].downlink_mbps.mean;
  unsetenv("VTP_SIM_SCHEDULER");
  unsetenv("VTP_OBS");
  return out;
}

// ---- output ---------------------------------------------------------------

void WriteChurn(core::JsonWriter& w, const ChurnStats& s) {
  w.BeginObject();
  w.Key("wall_s"); w.Number(s.wall_s);
  w.Key("events"); w.Int(static_cast<std::int64_t>(s.events));
  w.Key("events_per_sec"); w.Number(s.events_per_sec());
  w.Key("allocs_per_event"); w.Number(s.allocs_per_event());
  w.Key("callback_heap_allocs"); w.Int(static_cast<std::int64_t>(s.sched.callback_heap_allocs));
  w.Key("pool_slabs"); w.Int(static_cast<std::int64_t>(s.sched.pool_slabs));
  w.Key("overflow_inserts"); w.Int(static_cast<std::int64_t>(s.sched.overflow_inserts));
  w.Key("max_pending"); w.Int(static_cast<std::int64_t>(s.sched.max_pending));
  w.EndObject();
}

void WritePacketChurn(core::JsonWriter& w, const PacketChurnStats& s) {
  w.BeginObject();
  w.Key("wall_s"); w.Number(s.wall_s);
  w.Key("packets_sent"); w.Int(static_cast<std::int64_t>(s.packets_sent));
  w.Key("packets_delivered"); w.Int(static_cast<std::int64_t>(s.packets_delivered));
  w.Key("events"); w.Int(static_cast<std::int64_t>(s.events));
  w.Key("packets_per_sec"); w.Number(s.packets_per_sec());
  w.Key("pool_hit_rate"); w.Number(s.pool_hit_rate());
  w.Key("fresh_blocks"); w.Int(static_cast<std::int64_t>(s.pool.fresh_blocks));
  w.EndObject();
}

}  // namespace

int main() {
  std::cout << "Simulation-core benchmark: timer wheel + pools vs legacy heap.\n";

  bench::Banner("1. event churn (64 self-rescheduling chains, 2 s sim time)");
  const ChurnStats churn_wheel = RunEventChurn(net::Simulator::Scheduler::kWheel);
  const ChurnStats churn_heap = RunEventChurn(net::Simulator::Scheduler::kHeap);
  const double churn_speedup = churn_wheel.wall_s > 0
                                   ? churn_heap.wall_s / churn_wheel.wall_s
                                   : 0;
  core::TextTable churn_table;
  churn_table.SetHeader({"engine", "events", "wall (s)", "Mevents/s", "allocs/event"});
  for (const auto* s : {&churn_wheel, &churn_heap}) {
    churn_table.AddRow({s == &churn_wheel ? "wheel" : "heap",
                        core::Fmt(static_cast<double>(s->events), 0),
                        core::Fmt(s->wall_s, 3),
                        core::Fmt(s->events_per_sec() / 1e6, 2),
                        core::Fmt(s->allocs_per_event(), 4)});
  }
  churn_table.Print(std::cout);
  std::cout << "\nwheel is " << core::Fmt(churn_speedup, 2) << "x the heap engine "
            << "(target: >=3x).\n";

  bench::Banner("2. packet churn (200K UDP datagrams across 2 hops)");
  const PacketChurnStats pkt_wheel = RunPacketChurn(net::Simulator::Scheduler::kWheel);
  const PacketChurnStats pkt_heap = RunPacketChurn(net::Simulator::Scheduler::kHeap);
  const double pkt_speedup = pkt_wheel.wall_s > 0 ? pkt_heap.wall_s / pkt_wheel.wall_s : 0;
  core::TextTable pkt_table;
  pkt_table.SetHeader({"engine", "delivered", "wall (s)", "Kpkts/s", "pool hit rate"});
  for (const auto* s : {&pkt_wheel, &pkt_heap}) {
    pkt_table.AddRow({s == &pkt_wheel ? "wheel" : "heap",
                      core::Fmt(static_cast<double>(s->packets_delivered), 0),
                      core::Fmt(s->wall_s, 3),
                      core::Fmt(s->packets_per_sec() / 1e3, 1),
                      core::Fmt(100 * s->pool_hit_rate(), 1) + "%"});
  }
  pkt_table.Print(std::cout);
  std::cout << "\nwheel is " << core::Fmt(pkt_speedup, 2) << "x the heap engine.\n";

  bench::Banner("3. session A/B (fig6 5-user FaceTime, 8 s, both engines)");
  const SessionRun sess_wheel = RunSession(net::Simulator::Scheduler::kWheel);
  const SessionRun sess_heap = RunSession(net::Simulator::Scheduler::kHeap);
  const bool identical = sess_wheel.events == sess_heap.events &&
                         sess_wheel.uplink_mbps == sess_heap.uplink_mbps &&
                         sess_wheel.downlink_mbps == sess_heap.downlink_mbps;
  core::TextTable sess_table;
  sess_table.SetHeader({"engine", "wall (s)", "events", "Mevents/s", "U1 uplink (Mbps)",
                        "U1 downlink (Mbps)"});
  for (const auto* s : {&sess_wheel, &sess_heap}) {
    sess_table.AddRow({s == &sess_wheel ? "wheel" : "heap", core::Fmt(s->wall_s, 2),
                       core::Fmt(static_cast<double>(s->events), 0),
                       core::Fmt(s->events_per_sec() / 1e6, 2),
                       core::Fmt(s->uplink_mbps, 6), core::Fmt(s->downlink_mbps, 6)});
  }
  sess_table.Print(std::cout);
  std::cout << "\nreports identical across engines: " << (identical ? "yes" : "NO")
            << "\n(model code — codecs, capture, QUIC — dominates session wall time; the\n"
               "scheduler's own capacity is the event-churn number above)\n";

  bench::Banner("4. obs A/B (same session, frame tracing armed vs off, best of 2)");
  double obs_on_wall = 0, obs_off_wall = 0;
  std::uint64_t obs_on_events = 0;
  bool obs_identical = true;
  for (int rep = 0; rep < 2; ++rep) {
    const SessionRun on = RunSession(net::Simulator::Scheduler::kWheel, /*obs=*/true);
    const SessionRun off = RunSession(net::Simulator::Scheduler::kWheel, /*obs=*/false);
    if (rep == 0 || on.wall_s < obs_on_wall) obs_on_wall = on.wall_s;
    if (rep == 0 || off.wall_s < obs_off_wall) obs_off_wall = off.wall_s;
    obs_on_events = on.events;
    obs_identical = obs_identical && on.events == off.events &&
                    on.uplink_mbps == off.uplink_mbps &&
                    on.downlink_mbps == off.downlink_mbps;
  }
  const double obs_overhead_pct =
      obs_off_wall > 0 ? (obs_on_wall / obs_off_wall - 1.0) * 100 : 0;
  const bool obs_ok = obs_overhead_pct <= 5.0 && obs_identical;
  std::cout << "obs on:  " << core::Fmt(obs_on_wall, 3) << " s (" << obs_on_events
            << " events)\nobs off: " << core::Fmt(obs_off_wall, 3) << " s\noverhead: "
            << core::Fmt(obs_overhead_pct, 2)
            << "% (target <3%, hard fail >5%); reports identical: "
            << (obs_identical ? "yes" : "NO") << "\n";

  // ---- JSON ---------------------------------------------------------------
  bench::JsonReport report("simcore");
  core::JsonWriter& w = report.writer();
  w.Key("event_churn");
  w.BeginObject();
  w.Key("wheel"); WriteChurn(w, churn_wheel);
  w.Key("heap"); WriteChurn(w, churn_heap);
  w.Key("speedup"); w.Number(churn_speedup);
  w.EndObject();
  w.Key("packet_churn");
  w.BeginObject();
  w.Key("wheel"); WritePacketChurn(w, pkt_wheel);
  w.Key("heap"); WritePacketChurn(w, pkt_heap);
  w.Key("speedup"); w.Number(pkt_speedup);
  w.EndObject();
  w.Key("session_ab");
  w.BeginObject();
  w.Key("users"); w.Int(5);
  w.Key("wheel_wall_s"); w.Number(sess_wheel.wall_s);
  w.Key("heap_wall_s"); w.Number(sess_heap.wall_s);
  w.Key("wheel_events_per_sec"); w.Number(sess_wheel.events_per_sec());
  w.Key("heap_events_per_sec"); w.Number(sess_heap.events_per_sec());
  w.Key("events"); w.Int(static_cast<std::int64_t>(sess_wheel.events));
  w.Key("speedup");
  w.Number(sess_wheel.wall_s > 0 ? sess_heap.wall_s / sess_wheel.wall_s : 0);
  w.Key("reports_identical"); w.Bool(identical);
  w.EndObject();
  w.Key("obs_overhead");
  w.BeginObject();
  w.Key("on_wall_s"); w.Number(obs_on_wall);
  w.Key("off_wall_s"); w.Number(obs_off_wall);
  w.Key("overhead_pct"); w.Number(obs_overhead_pct);
  w.Key("target_pct"); w.Number(3.0);
  w.Key("fail_pct"); w.Number(5.0);
  w.Key("reports_identical"); w.Bool(obs_identical);
  w.EndObject();

  const std::string path = report.Write();
  std::cout << "\nwrote " << path << "\n";

  if (!obs_ok) std::cout << "FAIL: obs overhead > 5% or changed the session report\n";
  return identical && churn_speedup >= 1.0 && obs_ok ? 0 : 1;
}
