// Table 1: average RTT between each VCA's servers and test users in the
// Western/Middle/Eastern US, measured with TCP pings (ICMP is blocked), with
// servers geolocated through the toy GeoIP database. Also reproduces §4.1's
// protocol-identification findings (QUIC vs RTP, P2P rules, payload types).
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "core/rtt_matrix.h"
#include "vca/profile.h"
#include "vca/session.h"

using namespace vtp;

namespace {

void RunRttMatrix() {
  bench::Banner("Table 1: RTT (ms) between VCA servers and W/M/E test users");

  // Server fleets as identified in §4.1 (4 / 2 / 3 / 1 servers).
  core::RttProbeSpec spec;
  spec.clients = {{"W", "SanFrancisco"}, {"M", "Dallas"}, {"E", "NewYork"}};
  for (const vca::VcaApp app : {vca::VcaApp::kFaceTime, vca::VcaApp::kZoom,
                                vca::VcaApp::kWebex, vca::VcaApp::kTeams}) {
    const vca::VcaProfile& profile = vca::GetProfile(app);
    for (const std::string_view metro : profile.server_metros) {
      spec.servers.push_back({std::string(vca::AppName(app)), std::string(metro)});
    }
  }
  spec.pings_per_pair = bench::FullRuns() ? 20 : 10;
  const core::RttMatrix result = core::MeasureRttMatrix(spec);

  core::TextTable table;
  std::vector<std::string> header = {"Users"};
  for (std::size_t s = 0; s < spec.servers.size(); ++s) {
    header.push_back(spec.servers[s].label + "." +
                     std::string(net::RegionCode(result.server_regions[s])));
  }
  table.SetHeader(header);
  double max_stddev = 0;
  for (std::size_t c = 0; c < spec.clients.size(); ++c) {
    std::vector<std::string> row = {spec.clients[c].label};
    for (std::size_t s = 0; s < spec.servers.size(); ++s) {
      row.push_back(core::Fmt(result.rtt_ms[c][s].mean, 1));
      max_stddev = std::max(max_stddev, result.rtt_ms[c][s].stddev);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n(max per-cell stddev " << core::Fmt(max_stddev, 2)
            << " ms; the paper reports <7 ms)\n";
  std::cout << "Server columns: FaceTime W/M1/M2/E, Zoom W/E, Webex W/M/E, Teams W.\n";
}

void RunServerAllocationCheck() {
  bench::Banner("Section 4.1: nearest-to-initiator server allocation");

  core::TextTable table;
  table.SetHeader({"app", "initiator", "other user", "assigned server"});
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"SanFrancisco", "NewYork"}, {"NewYork", "SanFrancisco"}, {"Dallas", "Seattle"}};
  const std::vector<vca::VcaApp> apps = {vca::VcaApp::kFaceTime, vca::VcaApp::kWebex};
  const auto servers = bench::ParallelRepeats(
      static_cast<int>(apps.size() * pairs.size()), [&](int i) -> std::string {
        const vca::VcaApp app = apps[static_cast<std::size_t>(i) / pairs.size()];
        const auto& [initiator, other] = pairs[static_cast<std::size_t>(i) % pairs.size()];
        vca::SessionConfig config;
        config.app = app;
        config.participants = {
            {.name = "U1", .metro = initiator, .device = vca::DeviceType::kVisionPro},
            {.name = "U2", .metro = other, .device = vca::DeviceType::kVisionPro}};
        config.duration = net::Seconds(2);
        config.enable_render = false;
        config.enable_reconstruction = false;
        vca::TelepresenceSession session(std::move(config));
        return session.server_metros_used().empty() ? "P2P" : session.server_metros_used()[0];
      });
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const vca::VcaApp app = apps[i / pairs.size()];
    const auto& [initiator, other] = pairs[i % pairs.size()];
    table.AddRow({std::string(vca::AppName(app)), initiator, other, servers[i]});
  }
  table.Print(std::cout);
  std::cout << "\nThe server always follows the *initiating* user's region.\n";
}

void RunProtocolIdentification() {
  bench::Banner("Section 4.1: transport protocol per app and device mix");

  struct Case {
    vca::VcaApp app;
    vca::DeviceType u2_device;
    const char* label;
  };
  const std::vector<Case> cases = {
      {vca::VcaApp::kFaceTime, vca::DeviceType::kVisionPro, "FaceTime, 2x VisionPro"},
      {vca::VcaApp::kFaceTime, vca::DeviceType::kMacBook, "FaceTime, VisionPro+MacBook"},
      {vca::VcaApp::kZoom, vca::DeviceType::kVisionPro, "Zoom, 2x VisionPro"},
      {vca::VcaApp::kWebex, vca::DeviceType::kVisionPro, "Webex, 2x VisionPro"},
      {vca::VcaApp::kTeams, vca::DeviceType::kVisionPro, "Teams, 2x VisionPro"},
  };

  core::TextTable table;
  table.SetHeader({"session", "persona", "topology", "protocol", "RTP PT"});
  const auto rows = bench::ParallelRepeats(
      static_cast<int>(cases.size()), [&](int i) -> std::vector<std::string> {
        const Case& c = cases[static_cast<std::size_t>(i)];
        vca::SessionConfig config;
        config.app = c.app;
        config.participants = {
            {.name = "U1", .metro = "SanFrancisco", .device = vca::DeviceType::kVisionPro},
            {.name = "U2", .metro = "NewYork", .device = c.u2_device}};
        config.duration = net::Seconds(6);
        config.enable_reconstruction = false;
        vca::TelepresenceSession session(std::move(config));
        session.Run();
        const vca::SessionReport report = session.BuildReport();
        const vca::ParticipantReport& u1 = report.participants[0];
        return {c.label,
                report.persona_kind == vca::PersonaKind::kSpatial ? "spatial" : "2D",
                report.p2p ? "P2P" : "server",
                u1.uplink_protocol,
                u1.rtp_payload_type >= 0 ? core::Fmt(u1.rtp_payload_type, 0) : "-"};
      });
  for (const std::vector<std::string>& row : rows) table.AddRow(row);
  table.Print(std::cout);
  std::cout << "\nQUIC appears only for all-Vision-Pro FaceTime; mixed-device FaceTime\n"
               "reverts to RTP with the same payload type as its 2D video calls.\n";
}

}  // namespace

int main() {
  std::cout << "Reproduction of Table 1 and the Section 4.1 findings.\n";
  RunRttMatrix();
  RunServerAllocationCheck();
  RunProtocolIdentification();
  return 0;
}
