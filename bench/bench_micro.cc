// Micro-benchmarks (google-benchmark) for the hot code paths: the lzr
// compressor, the mesh codec, the video codec, the semantic pipeline, and
// QUIC packet processing over the simulator.
#include <benchmark/benchmark.h>

#include "audio/codec.h"
#include "audio/speech_source.h"
#include "compress/lzr.h"
#include "compress/lzr_stream.h"
#include "mesh/codec.h"
#include "mesh/generator.h"
#include "mesh/simplify.h"
#include "netsim/network.h"
#include "semantic/codec.h"
#include "semantic/generator.h"
#include "semantic/reconstruct.h"
#include "transport/fec.h"
#include "transport/quic.h"
#include "video/codec.h"
#include "video/talking_head.h"

using namespace vtp;

namespace {

void BM_LzrCompressKeypointFrame(benchmark::State& state) {
  semantic::KeypointTrackGenerator gen({}, 1);
  semantic::SemanticEncoder enc({.lz_compress = false});
  const auto raw = enc.EncodeFrame(semantic::ExtractSemanticSubset(gen.Next()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::LzrCompress(raw));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * raw.size()));
}
BENCHMARK(BM_LzrCompressKeypointFrame);

void BM_LzrEncoderCompressKeypointFrame(benchmark::State& state) {
  // Stateful streaming encoder on the paper's per-frame workload: the match
  // finder arena, range-coder scratch, and output buffer are reused across
  // iterations, so this measures the zero-allocation steady state that a
  // 90 FPS capture loop actually runs (compare against the free-function
  // variant above, which pays the arena setup every call).
  semantic::KeypointTrackGenerator gen({}, 1);
  semantic::SemanticEncoder enc(
      {.quantize_bits = 11, .temporal_delta = true, .lz_compress = false});
  const auto raw = enc.EncodeFrame(semantic::ExtractSemanticSubset(gen.Next()));
  compress::LzrEncoder lzr;
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    lzr.CompressInto(raw, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * raw.size()));
}
BENCHMARK(BM_LzrEncoderCompressKeypointFrame);

void BM_LzrEncoderCompressKeypointFrameLazy(benchmark::State& state) {
  semantic::KeypointTrackGenerator gen({}, 1);
  semantic::SemanticEncoder enc(
      {.quantize_bits = 11, .temporal_delta = true, .lz_compress = false});
  const auto raw = enc.EncodeFrame(semantic::ExtractSemanticSubset(gen.Next()));
  compress::LzrEncoder lzr;
  compress::LzParams params;
  params.parser = compress::LzParser::kLazy;
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    lzr.CompressInto(raw, out, params);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * raw.size()));
}
BENCHMARK(BM_LzrEncoderCompressKeypointFrameLazy);

void BM_LzrRoundTripText(benchmark::State& state) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i) {
    const std::string chunk = "spatial persona semantic communication ";
    data.insert(data.end(), chunk.begin(), chunk.end());
  }
  for (auto _ : state) {
    const auto compressed = compress::LzrCompress(data);
    benchmark::DoNotOptimize(compress::LzrDecompress(compressed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_LzrRoundTripText);

void BM_MeshEncodePersona(benchmark::State& state) {
  const mesh::TriangleMesh persona = mesh::GeneratePersona(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::EncodeMesh(persona));
  }
  state.counters["triangles"] = static_cast<double>(persona.triangle_count());
}
BENCHMARK(BM_MeshEncodePersona)->Unit(benchmark::kMillisecond);

void BM_MeshSimplifyPersona(benchmark::State& state) {
  const mesh::TriangleMesh persona = mesh::GeneratePersona(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::SimplifyGrid(persona, 64));
  }
}
BENCHMARK(BM_MeshSimplifyPersona)->Unit(benchmark::kMillisecond);

void BM_SemanticEncodeFrame(benchmark::State& state) {
  semantic::KeypointTrackGenerator gen({}, 3);
  semantic::SemanticEncoder enc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.EncodeFrame(semantic::ExtractSemanticSubset(gen.Next())));
  }
}
BENCHMARK(BM_SemanticEncodeFrame);

void BM_PersonaReconstruction(benchmark::State& state) {
  semantic::PersonaReconstructor recon(mesh::GeneratePersona(4));
  semantic::KeypointTrackGenerator gen({}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon.Apply(semantic::ExtractSemanticSubset(gen.Next())));
  }
}
BENCHMARK(BM_PersonaReconstruction);

void BM_VideoEncode360p(benchmark::State& state) {
  video::TalkingHeadConfig config;
  config.resolution = video::kZoomResolution;
  video::TalkingHeadSource source(config, 5);
  video::VideoEncoder encoder(config.resolution);
  const video::VideoFrame frame = source.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(frame, 28));
  }
  state.counters["pixels"] =
      static_cast<double>(config.resolution.width) * config.resolution.height;
}
BENCHMARK(BM_VideoEncode360p)->Unit(benchmark::kMillisecond);

void BM_AudioEncodeFrame(benchmark::State& state) {
  audio::SpeechSource source({}, 1);
  audio::AudioEncoder encoder({.quality = 5, .dtx = false});
  const audio::AudioFrame frame = source.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeFrame(frame));
  }
}
BENCHMARK(BM_AudioEncodeFrame);

void BM_FecProtectGroup(benchmark::State& state) {
  transport::FecEncoder encoder(4);
  const std::vector<std::uint8_t> payload(900, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Protect(payload));
  }
}
BENCHMARK(BM_FecProtectGroup);

void BM_QuicDatagramEcho(benchmark::State& state) {
  // One full round: datagram over the simulated WAN, SFU-style echo back.
  net::Simulator sim(1);
  net::Network network(&sim);
  network.BuildBackbone();
  const auto a = network.AddHost("a", "SanFrancisco");
  const auto b = network.AddHost("b", "NewYork");
  network.ComputeRoutes();
  transport::QuicEndpoint client(&network, a, 9000), server(&network, b, 4433);
  server.set_on_accept([](transport::QuicConnection* conn) {
    conn->set_on_datagram([conn](std::span<const std::uint8_t> d) { conn->SendDatagram(d); });
  });
  transport::QuicConnection* conn = client.Connect(b, 4433);
  std::uint64_t received = 0;
  conn->set_on_datagram([&](std::span<const std::uint8_t>) { ++received; });
  sim.RunUntil(net::Millis(300));

  const std::vector<std::uint8_t> payload(900, 7);
  for (auto _ : state) {
    conn->SendDatagram(payload);
    sim.RunUntil(sim.now() + net::Millis(200));
  }
  state.counters["echoed"] = static_cast<double>(received);
}
BENCHMARK(BM_QuicDatagramEcho)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
