// Figure 5 + §4.4: visibility-aware optimizations for the spatial persona.
//
//   BL — baseline: staring at the persona from 1 m (no optimization)
//   V  — viewport adaptation: persona out of the viewport
//   F  — foveated rendering: persona in the periphery of the gaze
//   D  — distance-aware: persona beyond 3 m
//
// For each condition we run the real visibility -> LOD -> cost-model path
// over many frames and report the number of rendered triangles and the GPU
// time per frame. Also reproduces §4.4's occlusion experiment (5 users in a
// line: FaceTime does NOT cull occluded personas) and the distance sweep.
#include <iostream>

#include "bench/bench_util.h"
#include "netsim/random.h"
#include "render/cost_model.h"
#include "render/lod.h"
#include "render/visibility.h"

using namespace vtp;

namespace {

struct Condition {
  const char* label;
  render::Camera camera;
  render::Placement placement;
};

render::Camera CameraLooking(double head_yaw_deg, double gaze_yaw_deg) {
  render::Camera cam;
  cam.position = {0, 0, 0};
  const auto dir = [](double deg) {
    const double rad = deg * render::kRadPerDeg;
    return render::Vec3{static_cast<float>(std::sin(rad)), 0,
                        static_cast<float>(std::cos(rad))};
  };
  cam.forward = dir(head_yaw_deg);
  cam.gaze = dir(gaze_yaw_deg);
  return cam;
}

struct Measured {
  core::Summary triangles;
  core::Summary gpu_ms;
};

Measured MeasureCondition(const render::PersonaLodLadder& ladder,
                          const render::LodPolicy& policy, const render::Camera& camera,
                          const render::Placement& placement,
                          std::span<const render::Placement> occluders, int frames,
                          std::uint64_t seed) {
  net::Rng rng(seed);
  const render::CostModelConfig cost_model;
  std::vector<double> tris, gpu;
  for (int i = 0; i < frames; ++i) {
    const render::Visibility vis = render::EvaluateVisibility(camera, placement, occluders);
    const render::LodClass lod = render::SelectLod(vis, policy);
    render::RenderItem item;
    item.triangles = ladder.TriangleCount(lod);
    item.coverage = (lod == render::LodClass::kProxy || !vis.in_viewport)
                        ? 0.0
                        : render::NormalizedScreenCoverage(camera, placement);
    item.peripheral_shading = lod == render::LodClass::kPeripheral;
    tris.push_back(static_cast<double>(item.triangles));
    gpu.push_back(render::GpuFrameTimeMs(std::vector<render::RenderItem>{item}, cost_model, rng));
  }
  return {core::Summarize(tris), core::Summarize(gpu)};
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 5 and the Section 4.4 experiments.\n"
            << "(building the persona LOD ladder with the real simplifier...)\n";
  const render::LodPolicy policy;  // FaceTime defaults: occlusion-aware OFF
  const render::PersonaLodLadder ladder(1, policy);
  const int frames = bench::FullRuns() ? 2000 : 600;

  const std::vector<Condition> conditions = {
      {"BL (stare, 1 m)", CameraLooking(0, 0), {{0, 0, 1.0f}, 0.35f}},
      {"V  (out of viewport)", CameraLooking(120, 120), {{0, 0, 1.0f}, 0.35f}},
      {"F  (peripheral gaze)", CameraLooking(0, 40), {{0, 0, 1.0f}, 0.35f}},
      {"D  (3.5 m away)", CameraLooking(0, 0), {{0, 0, 3.5f}, 0.35f}},
  };

  bench::Banner("Figure 5(a): rendered triangles per optimization");
  core::TextTable tri_table;
  tri_table.SetHeader({"condition", "triangles (mean)", "paper"});
  const char* paper_tris[] = {"78030", "36", "21036", "45036"};
  // The LOD ladder is shared read-only; each condition gets its own Rng.
  const std::vector<Measured> results = bench::ParallelRepeats(
      static_cast<int>(conditions.size()), [&](int i) {
        const auto idx = static_cast<std::size_t>(i);
        return MeasureCondition(ladder, policy, conditions[idx].camera,
                                conditions[idx].placement, {}, frames, 7 + idx);
      });
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    tri_table.AddRow({conditions[i].label, core::Fmt(results[i].triangles.mean, 0),
                      paper_tris[i]});
  }
  tri_table.Print(std::cout);

  bench::Banner("Figure 5(b): GPU time per frame (ms)");
  core::TextTable gpu_table;
  gpu_table.SetHeader({"condition", "mean±std", "paper"});
  const char* paper_gpu[] = {"6.55±0.11", "2.68±0.05", "3.97±0.07", "3.91±0.05"};
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    gpu_table.AddRow({conditions[i].label, core::MeanPlusMinus(results[i].gpu_ms),
                      paper_gpu[i]});
  }
  gpu_table.Print(std::cout);
  const double v_saving = 1.0 - results[1].gpu_ms.mean / results[0].gpu_ms.mean;
  std::cout << "\nViewport adaptation cuts GPU time by " << core::Fmt(100 * v_saving, 0)
            << "% (paper: 59%).\n";

  // ---- §4.4 distance sweep (the threshold sits past 3 m) --------------------
  bench::Banner("Section 4.4: distance sweep, 1-10 m");
  core::TextTable dist_table;
  dist_table.SetHeader({"distance (m)", "triangles", "GPU ms"});
  const std::vector<Measured> sweep = bench::ParallelRepeats(10, [&](int i) {
    const int d = 1 + i;
    return MeasureCondition(ladder, policy, CameraLooking(0, 0),
                            {{0, 0, static_cast<float>(d)}, 0.35f}, {}, frames / 4,
                            static_cast<std::uint64_t>(50 + d));
  });
  for (int d = 1; d <= 10; ++d) {
    const Measured& m = sweep[static_cast<std::size_t>(d - 1)];
    dist_table.AddRow({core::Fmt(d, 0), core::Fmt(m.triangles.mean, 0),
                       core::Fmt(m.gpu_ms.mean, 2)});
  }
  dist_table.Print(std::cout);
  std::cout << "\nA lower-quality persona appears beyond "
            << core::Fmt(policy.distance_threshold_m, 0) << " m, as in the paper.\n";

  // ---- §4.4 occlusion experiment: U2..U5 in a line ---------------------------
  bench::Banner("Section 4.4: occlusion experiment (5 users in a line)");
  std::vector<render::Placement> line;
  for (int i = 0; i < 4; ++i) {
    line.push_back({{0, 0, 1.0f + 0.6f * static_cast<float>(i)}, 0.28f});
  }
  const auto measure_line = [&](const render::LodPolicy& p) {
    double tris = 0, gpu = 0;
    net::Rng rng(99);
    const render::CostModelConfig cost_model;
    for (int f = 0; f < frames / 2; ++f) {
      std::vector<render::RenderItem> items;
      for (std::size_t k = 0; k < line.size(); ++k) {
        std::vector<render::Placement> others;
        for (std::size_t m = 0; m < line.size(); ++m) {
          if (m != k) others.push_back(line[m]);
        }
        const render::Visibility vis =
            render::EvaluateVisibility(CameraLooking(0, 0), line[k], others);
        const render::LodClass lod = render::SelectLod(vis, p);
        items.push_back({.triangles = ladder.TriangleCount(lod),
                         .coverage = render::NormalizedScreenCoverage(CameraLooking(0, 0), line[k]),
                         .peripheral_shading = false});
      }
      for (const auto& item : items) tris += static_cast<double>(item.triangles);
      gpu += render::GpuFrameTimeMs(items, cost_model, rng);
    }
    return std::make_pair(tris / (frames / 2), gpu / (frames / 2));
  };

  render::LodPolicy occlusion_on = policy;
  occlusion_on.occlusion_aware = true;
  const auto line_runs = bench::ParallelRepeats(
      2, [&](int i) { return measure_line(i == 0 ? policy : occlusion_on); });
  const auto [facetime_tris, facetime_gpu] = line_runs[0];
  const auto [ablation_tris, ablation_gpu] = line_runs[1];

  core::TextTable occ_table;
  occ_table.SetHeader({"policy", "triangles/frame", "GPU ms/frame"});
  occ_table.AddRow({"FaceTime (occlusion-aware OFF, as measured)",
                    core::Fmt(facetime_tris, 0), core::Fmt(facetime_gpu, 2)});
  occ_table.AddRow({"ablation (occlusion-aware ON)", core::Fmt(ablation_tris, 0),
                    core::Fmt(ablation_gpu, 2)});
  occ_table.Print(std::cout);
  std::cout << "\nWith FaceTime's policy, occluded personas are still rendered in full\n"
               "(no triangle reduction), matching §4.4; the ablation row shows the\n"
               "saving FaceTime leaves on the table.\n";
  return 0;
}
