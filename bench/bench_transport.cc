// Transport hot-path benchmark: the pooled-writer/ring-buffer QUIC path vs
// the retained legacy (std::vector / std::map) path, on the workload the
// paper's scalability story is bounded by — an SFU fanning every inbound
// datagram out to N-1 receivers (§4.2, Figure 6).
//
//   1. fan-out throughput — a 5-persona session (5 clients, one SFU, star
//      topology) pushing 90 FPS semantic-sized datagrams through the relay
//      for a fixed simulated duration. A/B wall time, interleaved reps,
//      best-of per side; the >=2x target applies here;
//   2. steady-state allocations — a global operator-new counter reset after
//      a warmup second; the default path must not touch the heap per
//      forwarded packet once pools and rings are warm;
//   3. differential — the same session run once per path with a capture on
//      the SFU's access link: wire traces (timing, addressing, sizes, and
//      the 16-byte payload prefix of every packet), per-client delivery
//      digests, and client transport stats must be identical.
//
//   4. observability overhead — the same fan-out session with the frame
//      tracer armed vs off (registry counters are always on). The A/B's
//      packets/s delta must stay under 3% (CI fails the bench above 5%);
//   5. per-stage latency breakdown — a small spatial TelepresenceSession,
//      with the Figure-4-style capture->...->playout stage table produced
//      entirely from obs::Snapshot and cross-checked against the receivers'
//      frames_decoded and a bench-side percentile recomputation.
//
// Results go to BENCH_transport.json (override with VTP_BENCH_JSON);
// `--smoke` shrinks the run for CI. Exit is nonzero on any differential
// mismatch, steady-state allocation on the default path, speedup < 1.0,
// obs overhead > 5%, or an obs snapshot that disagrees with the legacy
// accounting.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "netsim/capture.h"
#include "netsim/network.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "transport/quic.h"
#include "transport/taps.h"
#include "vca/session.h"
#include "vca/sfu.h"

using namespace vtp;

// ---- allocation counter -----------------------------------------------------
// Counts every operator-new in the process; the steady-state section resets
// it after warmup. Single-threaded bench, but atomic keeps it honest.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

constexpr int kPersonas = 5;
constexpr std::uint16_t kSfuPort = 7000;
constexpr std::size_t kPayloadBytes = 240;  // a semantic frame's ballpark

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Fnv(std::uint64_t h, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

std::uint64_t FnvU64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ static_cast<std::uint8_t>(v)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

void SelectPath(bool legacy) {
  if (legacy) {
    setenv("VTP_QUIC_PATH", "legacy", 1);
  } else {
    unsetenv("VTP_QUIC_PATH");
  }
}

/// One client persona: ticks at 90 FPS, refreshing a reusable payload in
/// place (xorshift over 64-bit words, deterministic per sender) and sending
/// it as a QUIC datagram tagged for SFU fan-out.
struct PersonaSender {
  net::Simulator* sim = nullptr;
  transport::QuicConnection* conn = nullptr;
  std::vector<std::uint8_t> payload;
  std::uint64_t rng = 0;
  net::SimTime until = 0;
  net::SimTime dt = 0;

  std::uint64_t seq = 0;

  void Start(int id, std::uint64_t seed) {
    payload.assign(kPayloadBytes, 0);
    payload[0] = vca::kRelayTagLocal;
    payload[1] = static_cast<std::uint8_t>(id);
    payload[2] = 0;  // semantic kind: fans out, and exercises the SFU's
    payload[3] = 0;  // relay-stamp parse (codec tag + uleb128 frame index)
    rng = seed;
    Tick();
  }

  void Tick() {
    // Frame index as a padded (non-canonical but valid) 4-byte uleb128, so
    // the header stays fixed-width and the random body never moves.
    payload[4] = static_cast<std::uint8_t>(0x80u | (seq & 0x7Fu));
    payload[5] = static_cast<std::uint8_t>(0x80u | ((seq >> 7) & 0x7Fu));
    payload[6] = static_cast<std::uint8_t>(0x80u | ((seq >> 14) & 0x7Fu));
    payload[7] = static_cast<std::uint8_t>((seq >> 21) & 0x7Fu);
    ++seq;
    for (std::size_t i = 8; i + 8 <= payload.size(); i += 8) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      std::memcpy(payload.data() + i, &rng, 8);
    }
    conn->SendDatagram(payload);
    if (sim->now() + dt <= until) sim->After(dt, [this] { Tick(); });
  }
};

struct SessionResult {
  std::uint64_t forwarded = 0;         ///< SFU forwards over the whole run
  std::uint64_t delivered = 0;         ///< datagrams received across clients
  std::uint64_t payload_digest = kFnvOffset;  ///< delivered bytes, in order
  std::uint64_t wire_digest = kFnvOffset;     ///< capture-trace digest
  std::uint64_t wire_packets = 0;
  std::uint64_t client_packets_sent = 0;
  std::uint64_t client_bytes_sent = 0;
  std::uint64_t prehandshake_drops = 0;
  std::uint64_t steady_allocs = 0;     ///< operator-new count after warmup
  std::uint64_t steady_forwarded = 0;  ///< forwards after warmup
};

/// Runs one 5-persona SFU fan-out session on the selected path. The star
/// topology (every host one 1 Gbps hop from the hub router) keeps generic
/// netsim cost minimal so the measurement isolates the transport layer.
SessionResult RunSession(bool legacy, net::SimTime duration, net::SimTime warmup,
                         bool with_capture, bool obs_trace = false) {
  SelectPath(legacy);
  SessionResult r;

  net::Simulator sim(1);
  if (obs_trace) sim.tracer().Enable(/*max_spans=*/1024);
  net::Network net(&sim);
  const net::GeoPoint here{41.88, -87.63};
  const net::NodeId hub = net.AddNode("hub", here, net::Region::kMiddleUs, /*is_router=*/true);
  const net::LinkConfig access{.rate_bps = 1e9, .prop_delay = net::Millis(1)};
  const net::NodeId server = net.AddNode("sfu", here, net::Region::kMiddleUs, false);
  net.Connect(server, hub, access);
  net::NodeId clients[kPersonas];
  for (int i = 0; i < kPersonas; ++i) {
    clients[i] = net.AddNode("c" + std::to_string(i), here, net::Region::kMiddleUs, false);
    net.Connect(clients[i], hub, access);
  }
  net.ComputeRoutes();

  vca::SfuServer sfu(&net, server, kSfuPort, vca::TransportKind::kQuicDatagram);
  net::Capture capture;
  if (with_capture) capture.AttachToLink(net, server, hub);

  std::vector<std::unique_ptr<transport::taps::Connection>> connections;
  std::vector<transport::QuicConnection*> conns;
  std::vector<PersonaSender> senders(kPersonas);
  for (int i = 0; i < kPersonas; ++i) {
    connections.push_back(transport::taps::Preconnection{}
                              .WithLocal({clients[i], static_cast<std::uint16_t>(9000 + i)})
                              .WithRemote({server, kSfuPort})
                              .Initiate(net));
    transport::QuicConnection* conn = connections.back()->quic();
    conn->set_on_datagram([&r](std::span<const std::uint8_t> data) {
      ++r.delivered;
      r.payload_digest = Fnv(r.payload_digest, data.data(), data.size());
    });
    conns.push_back(conn);
    senders[static_cast<std::size_t>(i)].sim = &sim;
    senders[static_cast<std::size_t>(i)].conn = conn;
    senders[static_cast<std::size_t>(i)].until = duration;
    senders[static_cast<std::size_t>(i)].dt = net::kSecond / 90;
    // Stagger starts so the five ticks don't land on one instant forever.
    sim.At(net::Millis(i), [&senders, i] {
      senders[static_cast<std::size_t>(i)].Start(i, 0x9E3779B97F4A7C15ull * (i + 1));
    });
  }

  std::uint64_t warm_forwarded = 0;
  sim.At(warmup, [&] {
    warm_forwarded = sfu.forwarded_count();
    g_allocs.store(0, std::memory_order_relaxed);
  });
  sim.RunUntil(duration);

  r.steady_allocs = g_allocs.load(std::memory_order_relaxed);
  r.forwarded = sfu.forwarded_count();
  r.steady_forwarded = r.forwarded - warm_forwarded;
  for (const transport::QuicConnection* conn : conns) {
    r.client_packets_sent += conn->stats().packets_sent;
    r.client_bytes_sent += conn->stats().bytes_sent;
    r.prehandshake_drops += conn->stats().datagrams_dropped_prehandshake;
  }
  for (const net::CaptureRecord& rec : capture.records()) {
    std::uint64_t h = r.wire_digest;
    h = FnvU64(h, static_cast<std::uint64_t>(rec.time));
    h = FnvU64(h, (static_cast<std::uint64_t>(rec.src) << 32) | rec.dst);
    h = FnvU64(h, (static_cast<std::uint64_t>(rec.src_port) << 32) | rec.dst_port);
    h = FnvU64(h, (static_cast<std::uint64_t>(rec.wire_bytes) << 8) | rec.prefix_len);
    r.wire_digest = Fnv(h, rec.prefix.data(), rec.prefix_len);
    ++r.wire_packets;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const net::SimTime duration = smoke ? net::Seconds(3) : net::Seconds(12);
  const net::SimTime warmup = net::Seconds(1);
  const int reps = smoke ? 2 : 5;

  std::cout << "Transport hot-path benchmark: pooled-writer QUIC + SFU fan-out vs legacy"
            << (smoke ? " (smoke)" : "") << "\n"
            << kPersonas << " personas, " << net::ToSeconds(duration) << " s simulated, " << reps
            << " reps\n";

  // ---- 1+2: timed A/B (no capture; its record vector would pollute both
  // the timing and the steady-state allocation count) ------------------------
  bench::Banner("1. fan-out throughput (best of " + std::to_string(reps) + " interleaved reps)");
  double legacy_best = 0, new_best = 0;
  SessionResult legacy_timed, new_timed;
  for (int rep = 0; rep < reps; ++rep) {
    {
      const bench::WallTimer timer;
      legacy_timed = RunSession(/*legacy=*/true, duration, warmup, /*with_capture=*/false);
      const double s = timer.seconds();
      if (rep == 0 || s < legacy_best) legacy_best = s;
    }
    {
      const bench::WallTimer timer;
      new_timed = RunSession(/*legacy=*/false, duration, warmup, /*with_capture=*/false);
      const double s = timer.seconds();
      if (rep == 0 || s < new_best) new_best = s;
    }
  }
  const double legacy_pps =
      legacy_best > 0 ? static_cast<double>(legacy_timed.forwarded) / legacy_best : 0;
  const double new_pps = new_best > 0 ? static_cast<double>(new_timed.forwarded) / new_best : 0;
  const double speedup = legacy_best > 0 && new_best > 0 ? legacy_best / new_best : 0;
  std::cout << "legacy: " << legacy_timed.forwarded << " forwarded in " << core::Fmt(legacy_best, 3)
            << " s  (" << core::Fmt(legacy_pps / 1000, 1) << "k pkts/s)\n"
            << "new:    " << new_timed.forwarded << " forwarded in " << core::Fmt(new_best, 3)
            << " s  (" << core::Fmt(new_pps / 1000, 1) << "k pkts/s)\n"
            << "speedup: " << core::Fmt(speedup, 2) << "x (target: >=2x)\n";

  bench::Banner("2. steady-state allocations (after " + core::Fmt(net::ToSeconds(warmup), 0) +
                " s warmup)");
  const double legacy_apf =
      legacy_timed.steady_forwarded > 0
          ? static_cast<double>(legacy_timed.steady_allocs) /
                static_cast<double>(legacy_timed.steady_forwarded)
          : 0;
  const double new_apf = new_timed.steady_forwarded > 0
                             ? static_cast<double>(new_timed.steady_allocs) /
                                   static_cast<double>(new_timed.steady_forwarded)
                             : 0;
  std::cout << "legacy: " << legacy_timed.steady_allocs << " allocs / "
            << legacy_timed.steady_forwarded << " forwarded = " << core::Fmt(legacy_apf, 2)
            << " per packet\n"
            << "new:    " << new_timed.steady_allocs << " allocs / " << new_timed.steady_forwarded
            << " forwarded = " << core::Fmt(new_apf, 2) << " per packet\n";
  const bool alloc_free = new_timed.steady_allocs == 0;

  // ---- 3: differential ------------------------------------------------------
  bench::Banner("3. differential (wire capture at the SFU access link)");
  const SessionResult legacy_diff =
      RunSession(/*legacy=*/true, duration, warmup, /*with_capture=*/true);
  const SessionResult new_diff =
      RunSession(/*legacy=*/false, duration, warmup, /*with_capture=*/true);
  const bool wire_match = legacy_diff.wire_digest == new_diff.wire_digest &&
                          legacy_diff.wire_packets == new_diff.wire_packets;
  const bool delivery_match = legacy_diff.payload_digest == new_diff.payload_digest &&
                              legacy_diff.delivered == new_diff.delivered;
  const bool stats_match = legacy_diff.client_packets_sent == new_diff.client_packets_sent &&
                           legacy_diff.client_bytes_sent == new_diff.client_bytes_sent &&
                           legacy_diff.forwarded == new_diff.forwarded;
  std::cout << "wire trace: " << new_diff.wire_packets << " packets, digests "
            << (wire_match ? "identical" : "DIFFER") << "\n"
            << "delivery:   " << new_diff.delivered << " datagrams, digests "
            << (delivery_match ? "identical" : "DIFFER") << "\n"
            << "stats:      " << (stats_match ? "identical" : "DIFFER") << "\n";

  // ---- 4: observability overhead -------------------------------------------
  bench::Banner("4. obs overhead (tracer armed vs off, default path, best of " +
                std::to_string(reps) + ")");
  double obs_off_best = 0, obs_on_best = 0;
  SessionResult obs_off_r, obs_on_r;
  for (int rep = 0; rep < reps; ++rep) {
    {
      const bench::WallTimer timer;
      obs_off_r = RunSession(/*legacy=*/false, duration, warmup, /*with_capture=*/false,
                             /*obs_trace=*/false);
      const double s = timer.seconds();
      if (rep == 0 || s < obs_off_best) obs_off_best = s;
    }
    {
      const bench::WallTimer timer;
      obs_on_r = RunSession(/*legacy=*/false, duration, warmup, /*with_capture=*/false,
                            /*obs_trace=*/true);
      const double s = timer.seconds();
      if (rep == 0 || s < obs_on_best) obs_on_best = s;
    }
  }
  const double obs_off_pps =
      obs_off_best > 0 ? static_cast<double>(obs_off_r.forwarded) / obs_off_best : 0;
  const double obs_on_pps =
      obs_on_best > 0 ? static_cast<double>(obs_on_r.forwarded) / obs_on_best : 0;
  const double obs_overhead_pct =
      obs_off_pps > 0 ? (obs_off_pps / (obs_on_pps > 0 ? obs_on_pps : obs_off_pps) - 1.0) * 100
                      : 0;
  const bool obs_same_work = obs_off_r.forwarded == obs_on_r.forwarded &&
                             obs_off_r.payload_digest == obs_on_r.payload_digest;
  const bool obs_ok = obs_overhead_pct <= 5.0 && obs_same_work;
  std::cout << "obs off: " << core::Fmt(obs_off_pps / 1000, 1) << "k pkts/s ("
            << core::Fmt(obs_off_best, 3) << " s)\n"
            << "obs on:  " << core::Fmt(obs_on_pps / 1000, 1) << "k pkts/s ("
            << core::Fmt(obs_on_best, 3) << " s)\n"
            << "overhead: " << core::Fmt(obs_overhead_pct, 2)
            << "% (target <3%, hard fail >5%); identical forwarding: "
            << (obs_same_work ? "yes" : "NO") << "\n";

  // ---- 5: per-stage latency breakdown from obs::Snapshot --------------------
  bench::Banner("5. frame-lifecycle breakdown (3-persona spatial session, from obs::Snapshot)");
  bool trace_ok = true;
  obs::Snapshot session_snap;
  {
    vca::SessionConfig cfg;
    cfg.app = vca::VcaApp::kFaceTime;
    cfg.participants = {{.name = "U1", .metro = "SanFrancisco", .device = vca::DeviceType::kVisionPro},
                        {.name = "U2", .metro = "NewYork", .device = vca::DeviceType::kVisionPro},
                        {.name = "U3", .metro = "Chicago", .device = vca::DeviceType::kVisionPro}};
    cfg.duration = smoke ? net::Seconds(4) : net::Seconds(8);
    cfg.enable_render = false;
    cfg.seed = 7;
    vca::TelepresenceSession session(cfg);
    session.Run();

    const obs::FrameTracer& tracer = session.sim().tracer();
    session_snap = obs::Snapshot::Capture(session.sim().metrics(), &tracer);

    // Cross-check 1: every decoded frame closed exactly one span.
    std::uint64_t frames_decoded = 0;
    for (std::size_t i = 0; i < cfg.participants.size(); ++i) {
      const vca::SpatialPersonaReceiver* rx = session.spatial_receiver(i);
      for (std::size_t j = 0; j < cfg.participants.size(); ++j) {
        if (j == i) continue;
        frames_decoded += rx->remote(static_cast<std::uint8_t>(j)).frames_decoded;
      }
    }
    if (session_snap.spans + session_snap.dropped_spans != frames_decoded) trace_ok = false;

    // Cross-check 2: the snapshot's percentiles equal a bench-side
    // recomputation from the raw spans (same Summarize the tables use).
    core::TextTable table;
    table.SetHeader(bench::BoxHeader("stage (ms)"));
    for (const obs::FrameTracer::StageSeries& series : tracer.Breakdown()) {
      const core::Summary recomputed = core::Summarize(series.ms);
      const obs::Snapshot::StageRow* row = session_snap.stage(series.label);
      if (row == nullptr || row->summary.n != recomputed.n ||
          row->summary.p50 != recomputed.p50 || row->summary.p95 != recomputed.p95 ||
          row->summary.mean != recomputed.mean) {
        trace_ok = false;
        continue;
      }
      table.AddRow(bench::BoxRow(series.label, row->summary));
    }
    table.Print(std::cout);
    std::cout << "spans: " << session_snap.spans << " (+" << session_snap.dropped_spans
              << " dropped, " << session_snap.orphan_completions
              << " orphaned) vs frames decoded: " << frames_decoded << " -> "
              << (trace_ok ? "consistent" : "MISMATCH") << "\n";
  }

  // ---- JSON ---------------------------------------------------------------
  bench::JsonReport report("transport");
  core::JsonWriter& w = report.writer();
  w.Key("smoke"); w.Bool(smoke);
  w.Key("personas"); w.Int(kPersonas);
  w.Key("duration_s"); w.Number(net::ToSeconds(duration));
  w.Key("reps"); w.Int(reps);
  w.Key("fanout");
  w.BeginObject();
  w.Key("forwarded"); w.Int(static_cast<std::int64_t>(new_timed.forwarded));
  w.Key("legacy_wall_s"); w.Number(legacy_best);
  w.Key("new_wall_s"); w.Number(new_best);
  w.Key("legacy_packets_per_s"); w.Number(legacy_pps);
  w.Key("new_packets_per_s"); w.Number(new_pps);
  w.Key("speedup"); w.Number(speedup);
  w.Key("speedup_target"); w.Number(2.0);
  w.EndObject();
  w.Key("steady_state");
  w.BeginObject();
  w.Key("legacy_allocs"); w.Int(static_cast<std::int64_t>(legacy_timed.steady_allocs));
  w.Key("new_allocs"); w.Int(static_cast<std::int64_t>(new_timed.steady_allocs));
  w.Key("legacy_forwarded"); w.Int(static_cast<std::int64_t>(legacy_timed.steady_forwarded));
  w.Key("new_forwarded"); w.Int(static_cast<std::int64_t>(new_timed.steady_forwarded));
  w.Key("legacy_allocs_per_packet"); w.Number(legacy_apf);
  w.Key("new_allocs_per_packet"); w.Number(new_apf);
  w.EndObject();
  w.Key("differential");
  w.BeginObject();
  w.Key("wire_packets"); w.Int(static_cast<std::int64_t>(new_diff.wire_packets));
  w.Key("wire_identical"); w.Bool(wire_match);
  w.Key("delivery_identical"); w.Bool(delivery_match);
  w.Key("stats_identical"); w.Bool(stats_match);
  w.EndObject();
  w.Key("prehandshake_drops"); w.Int(static_cast<std::int64_t>(new_timed.prehandshake_drops));
  w.Key("alloc_free"); w.Bool(alloc_free);
  w.Key("obs_overhead");
  w.BeginObject();
  w.Key("off_packets_per_s"); w.Number(obs_off_pps);
  w.Key("on_packets_per_s"); w.Number(obs_on_pps);
  w.Key("overhead_pct"); w.Number(obs_overhead_pct);
  w.Key("target_pct"); w.Number(3.0);
  w.Key("fail_pct"); w.Number(5.0);
  w.Key("identical_forwarding"); w.Bool(obs_same_work);
  w.EndObject();
  w.Key("session_snapshot");
  session_snap.WriteJson(w);
  w.Key("trace_consistent"); w.Bool(trace_ok);

  const std::string path = report.Write();
  std::cout << "\nwrote " << path << "\n";

  if (!wire_match || !delivery_match || !stats_match) std::cout << "FAIL: paths diverge\n";
  if (!alloc_free) std::cout << "FAIL: default path allocated in steady state\n";
  if (speedup < 1.0) std::cout << "FAIL: speedup < 1.0\n";
  if (!obs_ok) std::cout << "FAIL: obs overhead > 5% or changed forwarding\n";
  if (!trace_ok) std::cout << "FAIL: obs snapshot disagrees with legacy accounting\n";
  return wire_match && delivery_match && stats_match && alloc_free && speedup >= 1.0 &&
                 obs_ok && trace_ok
             ? 0
             : 1;
}
