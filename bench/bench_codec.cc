// SIMD/batch codec engine benchmark: the multi-lane rANS entropy stage and
// the vectorized video codec against their serial predecessors.
//
//   1. entropy lanes A/B — the keypoint workload of bench_compress (11-bit
//      quantized temporal deltas @ 90 FPS), compressed with VTP_ENTROPY=
//      legacy (serial range coder) and lanes (interleaved rANS) through the
//      same parse. Baseline is the legacy per-call compressor, as in
//      bench_compress; decode timings ride along because the forward
//      single-pass rANS decode is where interleaving pays most;
//   2. video encode A/B — a talking-head sequence through (a) a pinned
//      replica of the pre-SIMD scalar encoder (per-call recon allocation,
//      double SAD with per-pixel clamping, divide-based quantization) and
//      (b) the vectorized encoder in legacy and lanes entropy modes;
//   3. steady-state allocations — warm EncodeInto/DecodeInto and lanes
//      CompressInto loops must not touch the heap.
//
// Results go to BENCH_codec.json (override with VTP_BENCH_JSON) including
// the compile-time SIMD ISA; `--smoke` shrinks the run for CI. Exit is
// nonzero on any correctness failure, steady-state allocation, or an A/B
// speedup below 1.0 (the 2x/3x targets are recorded in the JSON and
// enforced out-of-band — CI boxes share cores, so the hard gate is
// regression-only).
#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <numbers>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "compress/entropy.h"
#include "compress/lzr.h"
#include "compress/lzr_stream.h"
#include "compress/range_coder.h"
#include "compress/varint.h"
#include "core/json.h"
#include "core/simd.h"
#include "core/table.h"
#include "semantic/codec.h"
#include "semantic/generator.h"
#include "semantic/keypoints.h"
#include "video/codec.h"
#include "video/frame.h"
#include "video/talking_head.h"

using namespace vtp;

// ---- allocation counter -----------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// ---- pinned replica of the pre-SIMD video encoder ---------------------------
// Byte-for-byte the scalar encoder this PR replaced: per-call reconstruction
// allocation, double-precision SAD with per-pixel edge clamping on every
// probe, divide + lround quantization in zigzag order, scalar DCT. Kept here
// so the A/B baseline cannot silently inherit later optimizations.

namespace seedvideo {

constexpr int kBlock = 8;
constexpr std::uint8_t kFlagKeyframe = 0x01;

struct DctBasis {
  std::array<std::array<float, kBlock>, kBlock> c{};
  DctBasis() {
    for (int u = 0; u < kBlock; ++u) {
      const float alpha = u == 0 ? std::sqrt(1.0f / kBlock) : std::sqrt(2.0f / kBlock);
      for (int x = 0; x < kBlock; ++x) {
        c[u][x] = alpha * std::cos((2 * x + 1) * u * std::numbers::pi_v<float> / (2 * kBlock));
      }
    }
  }
};
const DctBasis& Basis() {
  static const DctBasis basis;
  return basis;
}

using Block = std::array<float, kBlock * kBlock>;

void ForwardDct(const Block& in, Block& out) {
  const auto& c = Basis().c;
  Block tmp;
  for (int y = 0; y < kBlock; ++y) {
    for (int u = 0; u < kBlock; ++u) {
      float s = 0;
      for (int x = 0; x < kBlock; ++x) s += in[y * kBlock + x] * c[u][x];
      tmp[y * kBlock + u] = s;
    }
  }
  for (int u = 0; u < kBlock; ++u) {
    for (int v = 0; v < kBlock; ++v) {
      float s = 0;
      for (int y = 0; y < kBlock; ++y) s += tmp[y * kBlock + u] * c[v][y];
      out[v * kBlock + u] = s;
    }
  }
}

void InverseDct(const Block& in, Block& out) {
  const auto& c = Basis().c;
  Block tmp;
  for (int u = 0; u < kBlock; ++u) {
    for (int y = 0; y < kBlock; ++y) {
      float s = 0;
      for (int v = 0; v < kBlock; ++v) s += in[v * kBlock + u] * c[v][y];
      tmp[y * kBlock + u] = s;
    }
  }
  for (int y = 0; y < kBlock; ++y) {
    for (int x = 0; x < kBlock; ++x) {
      float s = 0;
      for (int u = 0; u < kBlock; ++u) s += tmp[y * kBlock + u] * c[u][x];
      out[y * kBlock + x] = s;
    }
  }
}

constexpr std::array<int, 64> MakeZigzag() {
  std::array<int, 64> order{};
  int idx = 0;
  for (int s = 0; s < 2 * kBlock - 1; ++s) {
    if (s % 2 == 0) {
      for (int y = std::min(s, kBlock - 1); y >= 0 && s - y < kBlock; --y) {
        order[idx++] = y * kBlock + (s - y);
      }
    } else {
      for (int x = std::min(s, kBlock - 1); x >= 0 && s - x < kBlock; --x) {
        order[idx++] = (s - x) * kBlock + x;
      }
    }
  }
  return order;
}
constexpr auto kZigzag = MakeZigzag();

float QStep(int qp) { return 0.625f * std::exp2(static_cast<float>(qp) / 6.0f); }
float FreqWeight(int zz) { return 1.0f + 0.06f * static_cast<float>(zz); }

struct CoeffModels {
  compress::SignedValueCoder dc;
  compress::SignedValueCoder ac_low;
  compress::SignedValueCoder ac_high;
  compress::BitTree<7> last_index;
  compress::SignedValueCoder mv_x;
  compress::SignedValueCoder mv_y;
};

constexpr int kMotionRange = 7;

float RefPixel(const video::VideoFrame& ref, int x, int y) {
  x = std::clamp(x, 0, ref.width - 1);
  y = std::clamp(y, 0, ref.height - 1);
  return static_cast<float>(ref.at(x, y));
}

double BlockSad(const video::VideoFrame& frame, const video::VideoFrame& ref, int bx, int by,
                int mvx, int mvy) {
  double sad = 0;
  for (int y = 0; y < kBlock; ++y) {
    for (int x = 0; x < kBlock; ++x) {
      const int px = std::min(bx * kBlock + x, frame.width - 1);
      const int py = std::min(by * kBlock + y, frame.height - 1);
      sad += std::abs(static_cast<float>(frame.at(px, py)) - RefPixel(ref, px + mvx, py + mvy));
    }
  }
  return sad;
}

std::pair<int, int> SearchMotion(const video::VideoFrame& frame, const video::VideoFrame& ref,
                                 int bx, int by, std::pair<int, int> predicted) {
  std::pair<int, int> best{0, 0};
  double best_cost = BlockSad(frame, ref, bx, by, 0, 0);
  const auto consider = [&](int mvx, int mvy) {
    if (std::abs(mvx) > kMotionRange || std::abs(mvy) > kMotionRange) return;
    const double cost = BlockSad(frame, ref, bx, by, mvx, mvy);
    if (cost < best_cost - 1e-9) {
      best_cost = cost;
      best = {mvx, mvy};
    }
  };
  consider(predicted.first, predicted.second);
  for (int step = 0; step < 4; ++step) {
    const auto [cx, cy] = best;
    consider(cx + 1, cy);
    consider(cx - 1, cy);
    consider(cx, cy + 1);
    consider(cx, cy - 1);
    if (best.first == cx && best.second == cy) break;
  }
  return best;
}

compress::SignedValueCoder& AcCoder(CoeffModels& m, int zz) {
  return zz < 16 ? m.ac_low : m.ac_high;
}

class Encoder {
 public:
  Encoder(video::Resolution resolution, int gop) : resolution_(resolution), gop_(gop) {}

  video::EncodedFrame Encode(const video::VideoFrame& frame, int qp) {
    qp = std::clamp(qp, 1, 51);
    const bool keyframe = !have_reference_ ||
                          frame_index_ % static_cast<std::uint64_t>(gop_) == 0;
    ++frame_index_;

    video::EncodedFrame out;
    out.keyframe = keyframe;
    out.qp = qp;
    out.bytes.push_back(keyframe ? kFlagKeyframe : 0);
    out.bytes.push_back(static_cast<std::uint8_t>(qp));
    compress::PutUleb128(out.bytes, static_cast<std::uint64_t>(frame.width));
    compress::PutUleb128(out.bytes, static_cast<std::uint64_t>(frame.height));

    if (!have_reference_) reference_ = video::VideoFrame(frame.width, frame.height);

    const int bw = (frame.width + kBlock - 1) / kBlock;
    const int bh = (frame.height + kBlock - 1) / kBlock;
    const float qstep = QStep(qp);

    compress::RangeEncoder rc(&out.bytes);
    CoeffModels models;
    std::int64_t prev_dc = 0;

    video::VideoFrame recon(frame.width, frame.height);
    Block pixels, coeffs, deq, rec;

    for (int by = 0; by < bh; ++by) {
      std::pair<int, int> mv_predictor{0, 0};
      for (int bx = 0; bx < bw; ++bx) {
        std::pair<int, int> mv{0, 0};
        if (!keyframe) mv = SearchMotion(frame, reference_, bx, by, mv_predictor);
        for (int y = 0; y < kBlock; ++y) {
          for (int x = 0; x < kBlock; ++x) {
            const int px = std::min(bx * kBlock + x, frame.width - 1);
            const int py = std::min(by * kBlock + y, frame.height - 1);
            float v = static_cast<float>(frame.at(px, py));
            if (!keyframe) v -= RefPixel(reference_, px + mv.first, py + mv.second);
            pixels[y * kBlock + x] = v;
          }
        }
        ForwardDct(pixels, coeffs);
        if (!keyframe) {
          models.mv_x.Encode(rc, mv.first - mv_predictor.first);
          models.mv_y.Encode(rc, mv.second - mv_predictor.second);
          mv_predictor = mv;
        }

        std::array<std::int32_t, 64> q{};
        int last = 0;
        for (int i = 0; i < 64; ++i) {
          const float step = qstep * FreqWeight(i);
          const auto level = static_cast<std::int32_t>(
              std::lround(coeffs[static_cast<std::size_t>(kZigzag[i])] / step));
          q[static_cast<std::size_t>(i)] = level;
          if (level != 0) last = i + 1;
        }

        models.last_index.Encode(rc, static_cast<std::uint32_t>(last));
        for (int i = 0; i < last; ++i) {
          if (i == 0) {
            models.dc.Encode(rc, q[0] - prev_dc);
            prev_dc = q[0];
          } else {
            AcCoder(models, i).Encode(rc, q[static_cast<std::size_t>(i)]);
          }
        }
        if (last == 0 && keyframe) prev_dc = 0;

        deq.fill(0);
        for (int i = 0; i < last; ++i) {
          deq[static_cast<std::size_t>(kZigzag[i])] =
              static_cast<float>(q[static_cast<std::size_t>(i)]) * qstep * FreqWeight(i);
        }
        InverseDct(deq, rec);
        for (int y = 0; y < kBlock; ++y) {
          for (int x = 0; x < kBlock; ++x) {
            const int px = bx * kBlock + x, py = by * kBlock + y;
            if (px >= frame.width || py >= frame.height) continue;
            float v = rec[y * kBlock + x];
            if (!keyframe) v += RefPixel(reference_, px + mv.first, py + mv.second);
            recon.set(px, py, static_cast<std::uint8_t>(std::clamp(v, 0.0f, 255.0f)));
          }
        }
      }
    }
    rc.Flush();
    reference_ = std::move(recon);
    have_reference_ = true;
    return out;
  }

 private:
  video::Resolution resolution_;
  int gop_;
  std::uint64_t frame_index_ = 0;
  video::VideoFrame reference_;
  bool have_reference_ = false;
};

}  // namespace seedvideo

namespace {

using Chunks = std::vector<std::vector<std::uint8_t>>;

compress::LzParams EntropyParams(compress::EntropyMode mode) {
  compress::LzParams p;
  p.entropy = mode;
  return p;
}

Chunks KeypointPayloads(int frames) {
  semantic::KeypointTrackGenerator generator({}, 9);
  semantic::SemanticEncoder encoder(
      {.quantize_bits = 11, .temporal_delta = true, .lz_compress = false});
  Chunks out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    out.push_back(encoder.EncodeFrame(semantic::ExtractSemanticSubset(generator.Next())));
  }
  return out;
}

// ---- entropy lanes A/B ------------------------------------------------------

struct EntropyResult {
  std::size_t input_bytes = 0;
  std::size_t legacy_bytes = 0;
  std::size_t lanes_bytes = 0;
  double baseline_wall_s = 0;      ///< legacy per-call compressor (bench_compress A-side)
  double legacy_wall_s = 0;        ///< streaming encoder, serial range coder
  double lanes_wall_s = 0;         ///< streaming encoder, interleaved rANS
  double legacy_decode_wall_s = 0;
  double lanes_decode_wall_s = 0;
  bool roundtrip_ok = true;

  double lanes_speedup() const { return lanes_wall_s > 0 ? baseline_wall_s / lanes_wall_s : 0; }
  double legacy_speedup() const { return legacy_wall_s > 0 ? baseline_wall_s / legacy_wall_s : 0; }
  double decode_speedup() const {
    return lanes_decode_wall_s > 0 ? legacy_decode_wall_s / lanes_decode_wall_s : 0;
  }
};

EntropyResult RunEntropyAb(const Chunks& chunks, int reps) {
  EntropyResult r;
  const compress::LzParams legacy = EntropyParams(compress::EntropyMode::kLegacy);
  const compress::LzParams lanes = EntropyParams(compress::EntropyMode::kLanes);

  // Correctness pass (untimed): both modes round-trip every chunk.
  compress::LzrEncoder encoder;
  std::vector<std::uint8_t> packed, unpacked;
  for (const auto& chunk : chunks) {
    r.input_bytes += chunk.size();
    for (const compress::LzParams* params : {&legacy, &lanes}) {
      packed.clear();
      encoder.CompressInto(chunk, packed, *params);
      (params == &legacy ? r.legacy_bytes : r.lanes_bytes) += packed.size();
      compress::LzrDecompressInto(packed, unpacked);
      if (unpacked.size() != chunk.size() ||
          (!chunk.empty() && std::memcmp(unpacked.data(), chunk.data(), chunk.size()) != 0)) {
        r.roundtrip_ok = false;
      }
    }
  }

  // Timed sweeps, interleaved, best-of-reps (shared-core CI box).
  std::size_t sink = 0;
  compress::LzrEncoder hot;
  std::vector<std::uint8_t> out;
  hot.CompressInto(chunks.front(), out, lanes);  // warm arena + rANS scratch
  // Pre-compressed streams for the decode sweeps (one buffer per chunk).
  Chunks legacy_streams, lanes_streams;
  for (const auto& chunk : chunks) {
    out.clear();
    hot.CompressInto(chunk, out, legacy);
    legacy_streams.push_back(out);
    out.clear();
    hot.CompressInto(chunk, out, lanes);
    lanes_streams.push_back(out);
  }
  for (int rep = 0; rep < reps; ++rep) {
    {
      const bench::WallTimer timer;
      for (const auto& chunk : chunks) sink += compress::LzrCompressLegacy(chunk, legacy).size();
      const double s = timer.seconds();
      if (rep == 0 || s < r.baseline_wall_s) r.baseline_wall_s = s;
    }
    {
      const bench::WallTimer timer;
      for (const auto& chunk : chunks) {
        out.clear();
        hot.CompressInto(chunk, out, legacy);
        sink += out.size();
      }
      const double s = timer.seconds();
      if (rep == 0 || s < r.legacy_wall_s) r.legacy_wall_s = s;
    }
    {
      const bench::WallTimer timer;
      for (const auto& chunk : chunks) {
        out.clear();
        hot.CompressInto(chunk, out, lanes);
        sink += out.size();
      }
      const double s = timer.seconds();
      if (rep == 0 || s < r.lanes_wall_s) r.lanes_wall_s = s;
    }
    {
      const bench::WallTimer timer;
      for (const auto& stream : legacy_streams) {
        compress::LzrDecompressInto(stream, unpacked);
        sink += unpacked.size();
      }
      const double s = timer.seconds();
      if (rep == 0 || s < r.legacy_decode_wall_s) r.legacy_decode_wall_s = s;
    }
    {
      const bench::WallTimer timer;
      for (const auto& stream : lanes_streams) {
        compress::LzrDecompressInto(stream, unpacked);
        sink += unpacked.size();
      }
      const double s = timer.seconds();
      if (rep == 0 || s < r.lanes_decode_wall_s) r.lanes_decode_wall_s = s;
    }
  }
  if (sink == 0) std::cout << "";
  return r;
}

// ---- video encode A/B -------------------------------------------------------

struct VideoResult {
  std::size_t frames = 0;
  std::size_t seed_bytes = 0;
  std::size_t new_bytes = 0;
  std::size_t lanes_bytes = 0;
  double seed_wall_s = 0;
  double new_wall_s = 0;    ///< vectorized encoder, legacy entropy
  double lanes_wall_s = 0;  ///< vectorized encoder, rANS lanes
  double psnr_db = 0;       ///< decoded new stream vs source, last frame
  bool decode_ok = true;
  bool size_parity = true;  ///< new <= 110% of seed (smaller is fine: the
                            ///< sig-bit AC scheme beats the seed layout)

  double speedup() const { return new_wall_s > 0 ? seed_wall_s / new_wall_s : 0; }
  double lanes_speedup() const { return lanes_wall_s > 0 ? seed_wall_s / lanes_wall_s : 0; }
};

VideoResult RunVideoAb(video::Resolution res, int frames, int reps, int qp, int gop) {
  VideoResult r;
  r.frames = static_cast<std::size_t>(frames);
  video::TalkingHeadConfig src_config;
  src_config.resolution = res;
  std::vector<video::VideoFrame> sequence;
  {
    video::TalkingHeadSource source(src_config, 77);
    for (int i = 0; i < frames; ++i) sequence.push_back(source.Next());
  }

  // Correctness pass: the new encoder's streams decode, and both entropy
  // modes reconstruct identical pixels (checked via decoded luma).
  {
    video::VideoCodecConfig legacy_cfg{.gop_length = gop,
                                       .entropy = compress::EntropyMode::kLegacy};
    video::VideoCodecConfig lanes_cfg{.gop_length = gop,
                                      .entropy = compress::EntropyMode::kLanes};
    seedvideo::Encoder seed(res, gop);
    video::VideoEncoder enc(res, legacy_cfg), enc_lanes(res, lanes_cfg);
    video::VideoDecoder dec(res), dec_lanes(res);
    video::EncodedFrame out;
    video::VideoFrame decoded, decoded_lanes;
    for (int i = 0; i < frames; ++i) {
      r.seed_bytes += seed.Encode(sequence[static_cast<std::size_t>(i)], qp).bytes.size();
      enc.EncodeInto(sequence[static_cast<std::size_t>(i)], qp, out);
      r.new_bytes += out.bytes.size();
      if (!dec.DecodeInto(out.bytes, decoded)) r.decode_ok = false;
      enc_lanes.EncodeInto(sequence[static_cast<std::size_t>(i)], qp, out);
      r.lanes_bytes += out.bytes.size();
      if (!dec_lanes.DecodeInto(out.bytes, decoded_lanes)) r.decode_ok = false;
      if (decoded.luma != decoded_lanes.luma) r.decode_ok = false;
    }
    r.psnr_db = video::Psnr(sequence.back(), decoded);
    r.size_parity =
        static_cast<double>(r.new_bytes) <= 1.10 * static_cast<double>(r.seed_bytes);
  }

  // Timed sweeps. Fresh encoders per sweep so every rep pays the same
  // keyframe/GOP schedule; interleaved best-of-reps as above.
  std::size_t sink = 0;
  video::EncodedFrame out;
  for (int rep = 0; rep < reps; ++rep) {
    {
      seedvideo::Encoder seed(res, gop);
      const bench::WallTimer timer;
      for (const auto& f : sequence) sink += seed.Encode(f, qp).bytes.size();
      const double s = timer.seconds();
      if (rep == 0 || s < r.seed_wall_s) r.seed_wall_s = s;
    }
    {
      video::VideoEncoder enc(res, {.gop_length = gop,
                                    .entropy = compress::EntropyMode::kLegacy});
      enc.EncodeInto(sequence.front(), qp, out);  // warm buffers (untimed)
      video::VideoEncoder timed(res, {.gop_length = gop,
                                      .entropy = compress::EntropyMode::kLegacy});
      const bench::WallTimer timer;
      for (const auto& f : sequence) {
        timed.EncodeInto(f, qp, out);
        sink += out.bytes.size();
      }
      const double s = timer.seconds();
      if (rep == 0 || s < r.new_wall_s) r.new_wall_s = s;
    }
    {
      video::VideoEncoder timed(res, {.gop_length = gop,
                                      .entropy = compress::EntropyMode::kLanes});
      const bench::WallTimer timer;
      for (const auto& f : sequence) {
        timed.EncodeInto(f, qp, out);
        sink += out.bytes.size();
      }
      const double s = timer.seconds();
      if (rep == 0 || s < r.lanes_wall_s) r.lanes_wall_s = s;
    }
  }
  if (sink == 0) std::cout << "";
  return r;
}

// ---- steady-state allocations ----------------------------------------------

struct AllocResult {
  std::uint64_t lanes_encode_allocs = 0;  ///< warm lanes CompressInto
  std::uint64_t video_encode_allocs = 0;  ///< warm VideoEncoder::EncodeInto
  std::uint64_t video_decode_allocs = 0;  ///< warm VideoDecoder::DecodeInto
};

AllocResult MeasureAllocs(const Chunks& payloads, video::Resolution res, int frames) {
  AllocResult r;
  const compress::LzParams lanes = EntropyParams(compress::EntropyMode::kLanes);

  compress::LzrEncoder encoder;
  std::vector<std::uint8_t> out;
  for (const auto& p : payloads) {  // warm
    out.clear();
    encoder.CompressInto(p, out, lanes);
  }
  g_allocs.store(0, std::memory_order_relaxed);
  for (const auto& p : payloads) {
    out.clear();
    encoder.CompressInto(p, out, lanes);
  }
  r.lanes_encode_allocs = g_allocs.load(std::memory_order_relaxed);

  video::TalkingHeadConfig src_config;
  src_config.resolution = res;
  video::TalkingHeadSource source(src_config, 31);
  std::vector<video::VideoFrame> sequence;
  for (int i = 0; i < frames; ++i) sequence.push_back(source.Next());

  video::VideoEncoder enc(res, {.gop_length = 10, .entropy = compress::EntropyMode::kLanes});
  video::VideoDecoder dec(res);
  video::EncodedFrame frame;
  video::VideoFrame decoded;
  std::vector<std::vector<std::uint8_t>> streams;
  for (const auto& f : sequence) {  // warm encoder + collect streams
    enc.EncodeInto(f, 14, frame);
    streams.push_back(frame.bytes);
    dec.DecodeInto(frame.bytes, decoded);  // warm decoder
  }
  g_allocs.store(0, std::memory_order_relaxed);
  for (const auto& f : sequence) enc.EncodeInto(f, 14, frame);
  r.video_encode_allocs = g_allocs.load(std::memory_order_relaxed);

  g_allocs.store(0, std::memory_order_relaxed);
  for (const auto& s : streams) dec.DecodeInto(s, decoded);
  r.video_decode_allocs = g_allocs.load(std::memory_order_relaxed);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int kp_frames = smoke ? 300 : 2000;
  const int reps = smoke ? 3 : 10;
  const video::Resolution res = smoke ? video::Resolution{160, 96} : video::Resolution{320, 192};
  const int video_frames = smoke ? 30 : 90;

  std::cout << "Codec engine benchmark: rANS lanes + SIMD video (isa: " << simd::kIsaName
            << ")" << (smoke ? " (smoke)" : "") << "\n";

  bench::Banner("1. entropy lanes A/B (keypoint deltas, " + std::to_string(kp_frames) +
                " frames, " + std::to_string(reps) + " reps)");
  const Chunks keypoints = KeypointPayloads(kp_frames);
  const EntropyResult ent = RunEntropyAb(keypoints, reps);
  std::cout << "baseline (legacy per-call):   " << core::Fmt(ent.baseline_wall_s, 4) << " s\n"
            << "streaming, serial range coder: " << core::Fmt(ent.legacy_wall_s, 4) << " s ("
            << core::Fmt(ent.legacy_speedup(), 2) << "x)\n"
            << "streaming, rANS lanes:         " << core::Fmt(ent.lanes_wall_s, 4) << " s ("
            << core::Fmt(ent.lanes_speedup(), 2) << "x, target >=2x)\n"
            << "decode legacy vs lanes:        " << core::Fmt(ent.legacy_decode_wall_s, 4)
            << " s vs " << core::Fmt(ent.lanes_decode_wall_s, 4) << " s ("
            << core::Fmt(ent.decode_speedup(), 2) << "x)\n"
            << "sizes: legacy " << ent.legacy_bytes << " B, lanes " << ent.lanes_bytes
            << " B, roundtrip " << (ent.roundtrip_ok ? "ok" : "FAILED") << "\n";

  bench::Banner("2. video encode A/B (" + std::to_string(res.width) + "x" +
                std::to_string(res.height) + ", " + std::to_string(video_frames) + " frames)");
  const VideoResult vid = RunVideoAb(res, video_frames, reps, 14, 10);
  std::cout << "seed scalar encoder:  " << core::Fmt(vid.seed_wall_s, 4) << " s\n"
            << "SIMD encoder (legacy): " << core::Fmt(vid.new_wall_s, 4) << " s ("
            << core::Fmt(vid.speedup(), 2) << "x, target >=3x)\n"
            << "SIMD encoder (lanes):  " << core::Fmt(vid.lanes_wall_s, 4) << " s ("
            << core::Fmt(vid.lanes_speedup(), 2) << "x)\n"
            << "decoded PSNR " << core::Fmt(vid.psnr_db, 1) << " dB, decode "
            << (vid.decode_ok ? "ok" : "FAILED") << ", size parity "
            << (vid.size_parity ? "ok" : "FAILED") << "\n";

  bench::Banner("3. steady-state allocations (warm buffers)");
  const AllocResult allocs = MeasureAllocs(keypoints, res, smoke ? 10 : 30);
  std::cout << "lanes CompressInto:        " << allocs.lanes_encode_allocs << " allocs\n"
            << "VideoEncoder::EncodeInto:  " << allocs.video_encode_allocs << " allocs\n"
            << "VideoDecoder::DecodeInto:  " << allocs.video_decode_allocs << " allocs\n";
  const bool alloc_free = allocs.lanes_encode_allocs == 0 && allocs.video_encode_allocs == 0 &&
                          allocs.video_decode_allocs == 0;

  const bool correctness_ok =
      ent.roundtrip_ok && vid.decode_ok && vid.size_parity && vid.psnr_db >= 40.0;

  // ---- JSON ---------------------------------------------------------------
  bench::JsonReport report("codec");
  core::JsonWriter& w = report.writer();
  w.Key("smoke"); w.Bool(smoke);
  w.Key("isa"); w.String(simd::kIsaName);
  w.Key("vector_isa"); w.Bool(simd::kVectorIsa);
  w.Key("entropy");
  w.BeginObject();
  w.Key("frames"); w.Int(kp_frames);
  w.Key("input_bytes"); w.Int(static_cast<std::int64_t>(ent.input_bytes));
  w.Key("legacy_bytes"); w.Int(static_cast<std::int64_t>(ent.legacy_bytes));
  w.Key("lanes_bytes"); w.Int(static_cast<std::int64_t>(ent.lanes_bytes));
  w.Key("baseline_wall_s"); w.Number(ent.baseline_wall_s);
  w.Key("legacy_wall_s"); w.Number(ent.legacy_wall_s);
  w.Key("lanes_wall_s"); w.Number(ent.lanes_wall_s);
  w.Key("legacy_decode_wall_s"); w.Number(ent.legacy_decode_wall_s);
  w.Key("lanes_decode_wall_s"); w.Number(ent.lanes_decode_wall_s);
  w.Key("lanes_speedup"); w.Number(ent.lanes_speedup());
  w.Key("decode_speedup"); w.Number(ent.decode_speedup());
  w.Key("speedup_target"); w.Number(2.0);
  w.Key("roundtrip_ok"); w.Bool(ent.roundtrip_ok);
  w.EndObject();
  w.Key("video");
  w.BeginObject();
  w.Key("width"); w.Int(res.width);
  w.Key("height"); w.Int(res.height);
  w.Key("frames"); w.Int(static_cast<std::int64_t>(vid.frames));
  w.Key("seed_bytes"); w.Int(static_cast<std::int64_t>(vid.seed_bytes));
  w.Key("new_bytes"); w.Int(static_cast<std::int64_t>(vid.new_bytes));
  w.Key("lanes_bytes"); w.Int(static_cast<std::int64_t>(vid.lanes_bytes));
  w.Key("seed_wall_s"); w.Number(vid.seed_wall_s);
  w.Key("new_wall_s"); w.Number(vid.new_wall_s);
  w.Key("lanes_wall_s"); w.Number(vid.lanes_wall_s);
  w.Key("speedup"); w.Number(vid.speedup());
  w.Key("lanes_speedup"); w.Number(vid.lanes_speedup());
  w.Key("speedup_target"); w.Number(3.0);
  w.Key("psnr_db"); w.Number(vid.psnr_db);
  w.Key("decode_ok"); w.Bool(vid.decode_ok);
  w.Key("size_parity"); w.Bool(vid.size_parity);
  w.EndObject();
  w.Key("steady_state");
  w.BeginObject();
  w.Key("lanes_encode_allocs"); w.Int(static_cast<std::int64_t>(allocs.lanes_encode_allocs));
  w.Key("video_encode_allocs"); w.Int(static_cast<std::int64_t>(allocs.video_encode_allocs));
  w.Key("video_decode_allocs"); w.Int(static_cast<std::int64_t>(allocs.video_decode_allocs));
  w.EndObject();
  w.Key("correctness_ok"); w.Bool(correctness_ok);
  w.Key("alloc_free"); w.Bool(alloc_free);

  const std::string path = report.Write();
  std::cout << "\nwrote " << path << "\n";

  if (!correctness_ok) std::cout << "FAIL: correctness checks failed\n";
  if (!alloc_free) std::cout << "FAIL: steady-state codec path allocated\n";
  if (ent.lanes_speedup() < 1.0) std::cout << "FAIL: lanes slower than legacy baseline\n";
  if (vid.speedup() < 1.0) std::cout << "FAIL: SIMD video encode slower than seed\n";
  return correctness_ok && alloc_free && ent.lanes_speedup() >= 1.0 && vid.speedup() >= 1.0
             ? 0
             : 1;
}
