// Quickstart: simulate a two-user FaceTime spatial-persona call between
// San Francisco and New York, then print what the paper's testbed would
// have measured — assigned server, wire protocol, per-user throughput, and
// Vision Pro render statistics.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/table.h"
#include "vca/session.h"

int main() {
  using namespace vtp;

  vca::SessionConfig config;
  config.app = vca::VcaApp::kFaceTime;
  config.participants = {
      {.name = "U1", .metro = "SanFrancisco", .device = vca::DeviceType::kVisionPro},
      {.name = "U2", .metro = "NewYork", .device = vca::DeviceType::kVisionPro},
  };
  config.duration = net::Seconds(15);
  config.seed = 42;

  std::cout << "Simulating a 15 s FaceTime call (2x Vision Pro, SF <-> NYC)...\n\n";
  vca::TelepresenceSession session(std::move(config));
  session.Run();
  const vca::SessionReport report = session.BuildReport();

  std::cout << "app:            " << report.app << "\n";
  std::cout << "persona kind:   "
            << (report.persona_kind == vca::PersonaKind::kSpatial ? "spatial" : "2D") << "\n";
  std::cout << "topology:       " << (report.p2p ? "P2P" : "server-relayed") << "\n";
  if (!report.server_metros.empty()) {
    std::cout << "server metro:   " << report.server_metros.front()
              << " (nearest to the initiating user, as in the paper)\n";
  }
  std::cout << "\n";

  core::TextTable table;
  table.SetHeader({"user", "metro", "proto", "up Mbps", "down Mbps", "GPU ms", "CPU ms",
                   "triangles", "avail"});
  for (const vca::ParticipantReport& p : report.participants) {
    table.AddRow({p.name, p.metro, p.uplink_protocol, core::Fmt(p.uplink_mbps.mean),
                  core::Fmt(p.downlink_mbps.mean), core::Fmt(p.gpu_ms.mean),
                  core::Fmt(p.cpu_ms.mean), core::Fmt(p.triangles.mean, 0),
                  core::Fmt(100 * p.persona_available_fraction, 1) + "%"});
  }
  table.Print(std::cout);

  std::cout << "\nNote the headline result of the paper: the immersive spatial persona\n"
               "needs LESS bandwidth (~0.7 Mbps) than any 2D-persona pipeline, because\n"
               "it ships 74 keypoints of semantic information instead of video.\n";
  return 0;
}
