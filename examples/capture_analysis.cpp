// Example: the paper's measurement methodology as a library — run a session
// and analyse it purely from the packet capture, the way §3.2 does with
// Wireshark + MaxMind: enumerate flows, classify protocols from first
// bytes, geolocate endpoints, and compute per-flow throughput.
//
// Build & run:  ./build/examples/capture_analysis
#include <iostream>

#include "core/table.h"
#include "netsim/geoip.h"
#include "transport/classifier.h"
#include "vca/session.h"

using namespace vtp;

int main() {
  // A three-user Webex call (RTP via SFU) with mixed devices.
  vca::SessionConfig config;
  config.app = vca::VcaApp::kWebex;
  config.participants = {
      {.name = "U1", .metro = "SanFrancisco", .device = vca::DeviceType::kVisionPro},
      {.name = "U2", .metro = "Chicago", .device = vca::DeviceType::kMacBook},
      {.name = "U3", .metro = "Miami", .device = vca::DeviceType::kIpad}};
  config.duration = net::Seconds(10);
  std::cout << "Running a 10 s three-user Webex session and analysing U1's capture...\n\n";
  vca::TelepresenceSession session(std::move(config));
  session.Run();

  const net::Capture& cap = session.capture(0);
  const net::GeoIpDb geo(session.network());

  std::cout << "captured " << cap.records().size() << " packets at U1's access point\n\n";

  // Flow table, like a Wireshark conversation view.
  core::TextTable table;
  table.SetHeader({"flow", "endpoint (geolocated)", "proto", "pkts", "Mbps", "RTP PT"});
  const auto flows = cap.Flows();
  const auto protocols = transport::ClassifyFlows(cap);
  for (const auto& [key, stats] : flows) {
    const bool uplink = key.src == session.host(0);
    const net::NodeId peer = uplink ? key.dst : key.src;
    const auto entry = geo.LookupNode(peer);
    const std::string where =
        entry ? entry->node_name + " (" + std::string(net::RegionCode(entry->region)) + ", " +
                    net::Ipv4ToString(session.network().node(peer).ipv4) + ")"
              : "unknown";
    const auto proto_it = protocols.find(key);
    const auto proto = proto_it == protocols.end() ? transport::FlowProtocol::kUnknown
                                                   : proto_it->second;
    const double mbps = static_cast<double>(stats.bytes) * 8 /
                        std::max(1e-9, net::ToSeconds(stats.last_time - stats.first_time)) / 1e6;
    const int pt = proto == transport::FlowProtocol::kRtp
                       ? transport::DominantRtpPayloadType(cap, key)
                       : -1;
    table.AddRow({uplink ? "uplink" : "downlink", where,
                  proto == transport::FlowProtocol::kRtp    ? "RTP"
                  : proto == transport::FlowProtocol::kQuic ? "QUIC"
                                                            : "other",
                  core::Fmt(static_cast<double>(stats.packets), 0), core::Fmt(mbps, 2),
                  pt >= 0 ? core::Fmt(pt, 0) : "-"});
  }
  table.Print(std::cout);

  std::cout << "\nEverything above came from the capture alone: the server's identity\n"
               "and region from geolocating the remote address, the protocol from the\n"
               "first payload bytes, the codec hint from the RTP payload type — the\n"
               "paper's §4.1 workflow, reproducible against any session this library\n"
               "can express.\n";
  return 0;
}
