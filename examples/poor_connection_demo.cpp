// Example: reproduce the "poor connection" cliff live (§4.3).
//
// A two-user FaceTime spatial call runs while U1's uplink degrades in
// steps (1.5 Mbps -> 0.9 -> 0.7 -> 0.5 -> back to unlimited). Every second
// we print U2's view: is U1's persona available, and at what decoded rate?
//
// Build & run:  ./build/examples/poor_connection_demo
#include <iomanip>
#include <iostream>

#include "vca/session.h"

using namespace vtp;

int main() {
  vca::SessionConfig config;
  config.participants = {
      {.name = "U1", .metro = "SanFrancisco", .device = vca::DeviceType::kVisionPro},
      {.name = "U2", .metro = "NewYork", .device = vca::DeviceType::kVisionPro}};
  config.duration = net::Seconds(40);
  config.enable_reconstruction = false;
  vca::TelepresenceSession session(std::move(config));

  // Staircase of uplink caps, like dragging a tc tbf rate down and back up.
  net::Netem netem = session.UplinkNetem(0);
  struct Step {
    double at_s;
    double cap_bps;  // 0 = unlimited
    const char* label;
  };
  const std::vector<Step> steps = {
      {8, 1.5e6, "cap 1.5 Mbps"}, {14, 0.9e6, "cap 0.9 Mbps"}, {20, 0.7e6, "cap 0.7 Mbps"},
      {26, 0.5e6, "cap 0.5 Mbps"}, {32, 0, "cap removed"},
  };
  for (const Step& step : steps) {
    session.sim().At(net::Seconds(step.at_s), [&netem, step] {
      if (step.cap_bps > 0) {
        netem.SetRateBps(step.cap_bps);
      } else {
        netem.SetRateBps(std::nullopt);
      }
      std::cout << "  [t=" << step.at_s << "s] tc: " << step.label << "\n";
    });
  }

  // A 1 Hz probe of U2's view of U1 (sender id 0).
  std::uint64_t last_decoded = 0;
  std::function<void()> probe = [&] {
    const auto* receiver = session.spatial_receiver(1);
    const auto& stats = receiver->remote(0);
    const bool available = receiver->PersonaAvailable(0, session.sim().now());
    const std::uint64_t fps = stats.frames_decoded - last_decoded;
    last_decoded = stats.frames_decoded;
    std::cout << "t=" << std::setw(4) << net::ToSeconds(session.sim().now()) << "s  U1 persona: "
              << (available ? "VISIBLE       " : "poor connection") << "  decoded "
              << std::setw(3) << fps << " fps\n";
    if (session.sim().now() < net::Seconds(39)) session.sim().After(net::kSecond, probe);
  };
  session.sim().At(net::Seconds(2), probe);

  std::cout << "Two-user FaceTime spatial call; degrading U1's uplink...\n\n";
  session.Run();

  std::cout << "\nThe persona survives caps above its ~0.7 Mbps semantic rate and drops\n"
               "out below it — there is no lower-quality ladder to fall back to (§4.3).\n";
  return 0;
}
