// Example: the "poor connection" cliff (§4.3) — and the adaptive fix.
//
// A two-user FaceTime spatial call runs while U1's uplink degrades in
// steps (1.5 Mbps -> 0.9 -> 0.7 -> 0.5 -> 0.25 -> back to unlimited).
// Every second we print U2's view of U1 (available? decoded rate?) and,
// with the adaptive control loop on, the ladder level U1's uplink
// controller picked (VTP_ADAPT; DESIGN §9).
//
// Run it both ways:
//   ./build/examples/poor_connection_demo            # measured behaviour:
//                                                    # persona dies < ~0.7 Mbps
//   VTP_ADAPT=1 ./build/examples/poor_connection_demo
//                                                    # live ladder: persona
//                                                    # survives every step and
//                                                    # recovers to full quality
//
// Exits nonzero if the adaptive run fails to recover to 100% availability
// in the final window (so it doubles as a smoke test).
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/knobs.h"
#include "vca/session.h"

using namespace vtp;

int main() {
  const bool adaptive = core::knobs::kAdapt.Get();

  vca::TelepresenceSession session(vca::TwoPartySpatialConfig(net::Seconds(54)));

  // Staircase of uplink caps, like dragging a tc tbf rate down and back up.
  net::Netem netem = session.UplinkNetem(0);
  struct Step {
    double at_s;
    double cap_bps;  // 0 = unlimited
    const char* label;
  };
  const std::vector<Step> steps = {
      {8, 1.5e6, "cap 1.5 Mbps"},  {14, 0.9e6, "cap 0.9 Mbps"},
      {20, 0.7e6, "cap 0.7 Mbps"}, {26, 0.5e6, "cap 0.5 Mbps"},
      {32, 0.25e6, "cap 0.25 Mbps"}, {38, 0, "cap removed"},
  };
  for (const Step& step : steps) {
    session.sim().At(net::Seconds(step.at_s), [&netem, step] {
      if (step.cap_bps > 0) {
        netem.SetRateBps(step.cap_bps);
      } else {
        netem.SetRateBps(std::nullopt);
      }
      std::cout << "  [t=" << step.at_s << "s] tc: " << step.label << "\n";
    });
  }

  // A 1 Hz probe of U2's view of U1 (sender id 0), plus U1's own ladder
  // level when the control loop is live. The cap lifts at 38 s; by 48 s even
  // a hold-down doubled by earlier failed probes (2 s -> 8 s) has expired,
  // so the last 6 s are the recovery window the demo asserts on.
  std::uint64_t last_decoded = 0;
  std::uint64_t recovery_samples = 0;
  std::uint64_t recovery_available = 0;
  std::function<void()> probe = [&] {
    const auto* receiver = session.spatial_receiver(1);
    const auto& stats = receiver->remote(0);
    const net::SimTime now = session.sim().now();
    const bool available = receiver->PersonaAvailable(0, now);
    const std::uint64_t fps = stats.frames_decoded - last_decoded;
    last_decoded = stats.frames_decoded;
    if (now >= net::Seconds(48)) {
      ++recovery_samples;
      if (available) ++recovery_available;
    }
    std::cout << "t=" << std::setw(4) << net::ToSeconds(now) << "s  U1 persona: "
              << (available ? "VISIBLE       " : "poor connection") << "  decoded "
              << std::setw(3) << fps << " fps";
    if (const auto* ctl = session.adapt_controller(0)) {
      std::cout << "  [level " << ctl->level() << ": " << ctl->level_spec().name << "]";
    }
    std::cout << "\n";
    if (now < net::Seconds(53)) session.sim().After(net::kSecond, probe);
  };
  session.sim().At(net::Seconds(2), probe);

  std::cout << "Two-user FaceTime spatial call; degrading U1's uplink"
            << (adaptive ? " (adaptive delivery ON)...\n\n" : "...\n\n");
  session.Run();

  if (!adaptive) {
    std::cout << "\nThe persona survives caps above its ~0.7 Mbps semantic rate and drops\n"
                 "out below it — there is no lower-quality ladder to fall back to (§4.3).\n"
                 "Re-run with VTP_ADAPT=1 to watch the control loop ride the ladder down\n"
                 "and recover.\n";
    return 0;
  }

  const auto* ctl = session.adapt_controller(0);
  std::cout << "\nController: " << ctl->downswitches() << " downswitches, "
            << ctl->upswitches() << " upswitches, " << ctl->probe_failures()
            << " failed probes; final level " << ctl->level() << " ("
            << ctl->level_spec().name << ")\n";
  if (recovery_samples == 0 || recovery_available < recovery_samples) {
    std::cout << "FAIL: persona did not recover to 100% availability after the cap was\n"
                 "removed (" << recovery_available << "/" << recovery_samples
              << " post-recovery samples available)\n";
    return 1;
  }
  std::cout << "Recovered: persona available in " << recovery_available << "/"
            << recovery_samples << " samples after the cap was removed.\n";
  return 0;
}
