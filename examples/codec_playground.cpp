// Example: the three content-delivery codecs side by side, standalone (no
// network) — the trade-off at the heart of the paper's §4.3.
//
//   1. Draco-class mesh codec on a generated persona scan
//   2. the block-DCT video codec on synthetic talking-head frames
//   3. the semantic keypoint codec (the approach FaceTime ships)
//
// Build & run:  ./build/examples/codec_playground
#include <iostream>

#include "core/table.h"
#include "mesh/codec.h"
#include "mesh/generator.h"
#include "semantic/codec.h"
#include "semantic/generator.h"
#include "semantic/reconstruct.h"
#include "video/codec.h"
#include "video/talking_head.h"

using namespace vtp;

int main() {
  core::TextTable table;
  table.SetHeader({"pipeline", "payload", "per frame", "at rate", "Mbps"});

  // --- 1. direct 3D: mesh codec --------------------------------------------
  {
    const mesh::TriangleMesh persona = mesh::GeneratePersona(1);
    const auto encoded = mesh::EncodeMesh(persona);
    const mesh::TriangleMesh decoded = mesh::DecodeMesh(encoded);
    std::cout << "mesh codec:     " << persona.triangle_count() << " triangles -> "
              << encoded.size() << " bytes ("
              << core::Fmt(static_cast<double>(encoded.size()) /
                               static_cast<double>(persona.triangle_count()),
                           2)
              << " B/tri), max position error "
              << core::Fmt(mesh::QuantizationError(persona) * 1000, 3) << " mm, "
              << "connectivity exact: "
              << (decoded.triangles == persona.triangles ? "yes" : "NO") << "\n";
    table.AddRow({"direct 3D streaming", "full persona mesh",
                  core::Fmt(static_cast<double>(encoded.size()) / 1024, 1) + " KiB",
                  "90 FPS", core::Fmt(encoded.size() * 8.0 * 90 / 1e6, 1)});
  }

  // --- 2. pre-rendered 2D: video codec --------------------------------------
  {
    video::TalkingHeadConfig config;
    config.resolution = video::kFaceTime2dResolution;
    video::TalkingHeadSource source(config, 2);
    video::VideoEncoder encoder(config.resolution);
    video::VideoDecoder decoder(config.resolution);
    std::size_t total = 0;
    double psnr = 0;
    const int frames = 30;
    for (int i = 0; i < frames; ++i) {
      const video::VideoFrame frame = source.Next();
      const video::EncodedFrame enc = encoder.Encode(frame, 30);
      total += enc.bytes.size();
      psnr += video::Psnr(frame, *decoder.Decode(enc.bytes)) / frames;
    }
    const double per_frame = static_cast<double>(total) / frames;
    std::cout << "video codec:    " << config.resolution.width << "x"
              << config.resolution.height << " @ QP30 -> " << core::Fmt(per_frame / 1024, 1)
              << " KiB/frame, " << core::Fmt(psnr, 1) << " dB PSNR\n";
    table.AddRow({"pre-rendered 2D video", "720p talking head",
                  core::Fmt(per_frame / 1024, 1) + " KiB", "30 FPS",
                  core::Fmt(per_frame * 8 * 30 / 1e6, 1)});
  }

  // --- 3. semantic: keypoints + reconstruction -------------------------------
  {
    semantic::KeypointTrackGenerator generator({}, 3);
    semantic::SemanticEncoder encoder;
    semantic::SemanticDecoder decoder;
    semantic::PersonaReconstructor reconstructor(mesh::GeneratePersona(1));
    std::size_t total = 0;
    const int frames = 90;
    for (int i = 0; i < frames; ++i) {
      const auto payload =
          encoder.EncodeFrame(semantic::ExtractSemanticSubset(generator.Next()));
      total += payload.size();
      const auto frame = decoder.DecodeFrame(payload);
      reconstructor.Apply(frame->points);  // deform the local persona
    }
    const double per_frame = static_cast<double>(total) / frames;
    std::cout << "semantic codec: 74 keypoints -> " << core::Fmt(per_frame, 0)
              << " B/frame, animating " << reconstructor.influenced_vertex_count()
              << " of " << reconstructor.current().vertex_count() << " vertices locally\n\n";
    table.AddRow({"semantic communication", "74 keypoints (mouth/eyes/hands)",
                  core::Fmt(per_frame, 0) + " B", "90 FPS",
                  core::Fmt(per_frame * 8 * 90 / 1e6, 2)});
  }

  table.Print(std::cout);
  std::cout << "\nSame persona, three delivery strategies — a ~150x bandwidth spread.\n"
               "FaceTime ships the bottom row; the paper's §4.3 reverse-engineers why.\n";
  return 0;
}
