// Example: an intercontinental telepresence stand-up (SF, London, Tokyo,
// NYC) comparing the VCAs' real allocation policy (one server next to the
// initiator, §4.1) with the geo-distributed design the paper proposes (§5).
//
// Build & run:  ./build/examples/global_team_call
#include <iostream>
#include <memory>

#include "core/table.h"
#include "transport/tcp_ping.h"
#include "vca/session.h"

using namespace vtp;

namespace {

// A hypothetical global fleet for the ablation (the real FaceTime fleet is
// US-only; the paper's discussion asks what a global deployment would buy).
const std::vector<std::string> kGlobalFleet = {"SanJose", "Ashburn", "London",
                                               "Frankfurt", "Tokyo", "Singapore"};

struct Result {
  std::vector<std::string> servers;
  std::vector<double> rtt_ms;
  double availability = 0;
};

Result Run(vca::ServerStrategy strategy) {
  vca::SessionConfig config;
  config.participants = {
      {.name = "sf", .metro = "SanFrancisco", .device = vca::DeviceType::kVisionPro},
      {.name = "lon", .metro = "London", .device = vca::DeviceType::kVisionPro},
      {.name = "tyo", .metro = "Tokyo", .device = vca::DeviceType::kVisionPro},
      {.name = "nyc", .metro = "NewYork", .device = vca::DeviceType::kVisionPro}};
  config.duration = net::Seconds(12);
  config.strategy = strategy;
  config.server_metros_override = kGlobalFleet;
  config.reconstruct_stride = 18;
  vca::TelepresenceSession session(std::move(config));

  Result result;
  result.servers = session.server_metros_used();
  result.rtt_ms.assign(4, 0);
  std::vector<std::unique_ptr<transport::TcpPinger>> pingers;
  for (std::size_t i = 0; i < 4; ++i) {
    auto pinger = std::make_unique<transport::TcpPinger>(
        &session.network(), session.host(i), static_cast<std::uint16_t>(31000 + i));
    pinger->Run(session.assigned_server_node(i), vca::TelepresenceSession::kProbePort, 5,
                net::Millis(100),
                [&result, i](std::vector<double> r) { result.rtt_ms[i] = core::Summarize(r).mean; });
    pingers.push_back(std::move(pinger));
  }
  session.Run();
  double availability = 0;
  const vca::SessionReport report = session.BuildReport();
  for (const vca::ParticipantReport& p : report.participants) {
    availability += p.persona_available_fraction / 4;
  }
  result.availability = availability;
  return result;
}

}  // namespace

int main() {
  std::cout << "Intercontinental 4-way FaceTime-style call: SF / London / Tokyo / NYC\n"
            << "(global server fleet: SanJose Ashburn London Frankfurt Tokyo Singapore)\n\n";

  const Result nearest = Run(vca::ServerStrategy::kNearestToInitiator);
  const Result geo = Run(vca::ServerStrategy::kGeoDistributed);

  core::TextTable table;
  table.SetHeader({"strategy", "servers used", "RTT sf/lon/tyo/nyc (ms)", "persona avail"});
  const auto row = [&](const char* label, const Result& r) {
    std::string servers, rtts;
    for (const std::string& s : r.servers) servers += s + " ";
    for (const double v : r.rtt_ms) rtts += core::Fmt(v, 0) + " ";
    table.AddRow({label, servers, rtts, core::Fmt(100 * r.availability, 1) + "%"});
  };
  row("nearest-to-initiator (today's VCAs)", nearest);
  row("geo-distributed + private backbone", geo);
  table.Print(std::cout);

  std::cout << "\nWith one initiator-side server, Tokyo and London pay >100 ms just to\n"
               "reach the session; per-user nearest servers cut everyone's access to\n"
               "~10 ms and carry the distance on the inter-server backbone (paper §5).\n";
  return 0;
}
