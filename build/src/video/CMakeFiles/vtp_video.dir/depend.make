# Empty dependencies file for vtp_video.
# This may be replaced when dependencies are built.
