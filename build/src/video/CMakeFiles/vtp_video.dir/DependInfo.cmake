
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/codec.cc" "src/video/CMakeFiles/vtp_video.dir/codec.cc.o" "gcc" "src/video/CMakeFiles/vtp_video.dir/codec.cc.o.d"
  "/root/repo/src/video/frame.cc" "src/video/CMakeFiles/vtp_video.dir/frame.cc.o" "gcc" "src/video/CMakeFiles/vtp_video.dir/frame.cc.o.d"
  "/root/repo/src/video/rate_control.cc" "src/video/CMakeFiles/vtp_video.dir/rate_control.cc.o" "gcc" "src/video/CMakeFiles/vtp_video.dir/rate_control.cc.o.d"
  "/root/repo/src/video/rate_model.cc" "src/video/CMakeFiles/vtp_video.dir/rate_model.cc.o" "gcc" "src/video/CMakeFiles/vtp_video.dir/rate_model.cc.o.d"
  "/root/repo/src/video/talking_head.cc" "src/video/CMakeFiles/vtp_video.dir/talking_head.cc.o" "gcc" "src/video/CMakeFiles/vtp_video.dir/talking_head.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/vtp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/vtp_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
