file(REMOVE_RECURSE
  "CMakeFiles/vtp_video.dir/codec.cc.o"
  "CMakeFiles/vtp_video.dir/codec.cc.o.d"
  "CMakeFiles/vtp_video.dir/frame.cc.o"
  "CMakeFiles/vtp_video.dir/frame.cc.o.d"
  "CMakeFiles/vtp_video.dir/rate_control.cc.o"
  "CMakeFiles/vtp_video.dir/rate_control.cc.o.d"
  "CMakeFiles/vtp_video.dir/rate_model.cc.o"
  "CMakeFiles/vtp_video.dir/rate_model.cc.o.d"
  "CMakeFiles/vtp_video.dir/talking_head.cc.o"
  "CMakeFiles/vtp_video.dir/talking_head.cc.o.d"
  "libvtp_video.a"
  "libvtp_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
