file(REMOVE_RECURSE
  "libvtp_video.a"
)
