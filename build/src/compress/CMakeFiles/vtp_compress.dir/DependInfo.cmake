
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitstream.cc" "src/compress/CMakeFiles/vtp_compress.dir/bitstream.cc.o" "gcc" "src/compress/CMakeFiles/vtp_compress.dir/bitstream.cc.o.d"
  "/root/repo/src/compress/crc32.cc" "src/compress/CMakeFiles/vtp_compress.dir/crc32.cc.o" "gcc" "src/compress/CMakeFiles/vtp_compress.dir/crc32.cc.o.d"
  "/root/repo/src/compress/lz77.cc" "src/compress/CMakeFiles/vtp_compress.dir/lz77.cc.o" "gcc" "src/compress/CMakeFiles/vtp_compress.dir/lz77.cc.o.d"
  "/root/repo/src/compress/lzr.cc" "src/compress/CMakeFiles/vtp_compress.dir/lzr.cc.o" "gcc" "src/compress/CMakeFiles/vtp_compress.dir/lzr.cc.o.d"
  "/root/repo/src/compress/range_coder.cc" "src/compress/CMakeFiles/vtp_compress.dir/range_coder.cc.o" "gcc" "src/compress/CMakeFiles/vtp_compress.dir/range_coder.cc.o.d"
  "/root/repo/src/compress/varint.cc" "src/compress/CMakeFiles/vtp_compress.dir/varint.cc.o" "gcc" "src/compress/CMakeFiles/vtp_compress.dir/varint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
