file(REMOVE_RECURSE
  "libvtp_compress.a"
)
