file(REMOVE_RECURSE
  "CMakeFiles/vtp_compress.dir/bitstream.cc.o"
  "CMakeFiles/vtp_compress.dir/bitstream.cc.o.d"
  "CMakeFiles/vtp_compress.dir/crc32.cc.o"
  "CMakeFiles/vtp_compress.dir/crc32.cc.o.d"
  "CMakeFiles/vtp_compress.dir/lz77.cc.o"
  "CMakeFiles/vtp_compress.dir/lz77.cc.o.d"
  "CMakeFiles/vtp_compress.dir/lzr.cc.o"
  "CMakeFiles/vtp_compress.dir/lzr.cc.o.d"
  "CMakeFiles/vtp_compress.dir/range_coder.cc.o"
  "CMakeFiles/vtp_compress.dir/range_coder.cc.o.d"
  "CMakeFiles/vtp_compress.dir/varint.cc.o"
  "CMakeFiles/vtp_compress.dir/varint.cc.o.d"
  "libvtp_compress.a"
  "libvtp_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
