# Empty compiler generated dependencies file for vtp_compress.
# This may be replaced when dependencies are built.
