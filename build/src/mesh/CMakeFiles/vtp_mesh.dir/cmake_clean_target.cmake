file(REMOVE_RECURSE
  "libvtp_mesh.a"
)
