file(REMOVE_RECURSE
  "CMakeFiles/vtp_mesh.dir/codec.cc.o"
  "CMakeFiles/vtp_mesh.dir/codec.cc.o.d"
  "CMakeFiles/vtp_mesh.dir/generator.cc.o"
  "CMakeFiles/vtp_mesh.dir/generator.cc.o.d"
  "CMakeFiles/vtp_mesh.dir/mesh.cc.o"
  "CMakeFiles/vtp_mesh.dir/mesh.cc.o.d"
  "CMakeFiles/vtp_mesh.dir/simplify.cc.o"
  "CMakeFiles/vtp_mesh.dir/simplify.cc.o.d"
  "libvtp_mesh.a"
  "libvtp_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
