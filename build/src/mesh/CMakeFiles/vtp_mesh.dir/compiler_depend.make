# Empty compiler generated dependencies file for vtp_mesh.
# This may be replaced when dependencies are built.
