
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantic/codec.cc" "src/semantic/CMakeFiles/vtp_semantic.dir/codec.cc.o" "gcc" "src/semantic/CMakeFiles/vtp_semantic.dir/codec.cc.o.d"
  "/root/repo/src/semantic/generator.cc" "src/semantic/CMakeFiles/vtp_semantic.dir/generator.cc.o" "gcc" "src/semantic/CMakeFiles/vtp_semantic.dir/generator.cc.o.d"
  "/root/repo/src/semantic/keypoints.cc" "src/semantic/CMakeFiles/vtp_semantic.dir/keypoints.cc.o" "gcc" "src/semantic/CMakeFiles/vtp_semantic.dir/keypoints.cc.o.d"
  "/root/repo/src/semantic/reconstruct.cc" "src/semantic/CMakeFiles/vtp_semantic.dir/reconstruct.cc.o" "gcc" "src/semantic/CMakeFiles/vtp_semantic.dir/reconstruct.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/vtp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/vtp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/vtp_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
