file(REMOVE_RECURSE
  "libvtp_semantic.a"
)
