# Empty dependencies file for vtp_semantic.
# This may be replaced when dependencies are built.
