file(REMOVE_RECURSE
  "CMakeFiles/vtp_semantic.dir/codec.cc.o"
  "CMakeFiles/vtp_semantic.dir/codec.cc.o.d"
  "CMakeFiles/vtp_semantic.dir/generator.cc.o"
  "CMakeFiles/vtp_semantic.dir/generator.cc.o.d"
  "CMakeFiles/vtp_semantic.dir/keypoints.cc.o"
  "CMakeFiles/vtp_semantic.dir/keypoints.cc.o.d"
  "CMakeFiles/vtp_semantic.dir/reconstruct.cc.o"
  "CMakeFiles/vtp_semantic.dir/reconstruct.cc.o.d"
  "libvtp_semantic.a"
  "libvtp_semantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
