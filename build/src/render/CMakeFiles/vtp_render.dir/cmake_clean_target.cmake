file(REMOVE_RECURSE
  "libvtp_render.a"
)
