
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/cost_model.cc" "src/render/CMakeFiles/vtp_render.dir/cost_model.cc.o" "gcc" "src/render/CMakeFiles/vtp_render.dir/cost_model.cc.o.d"
  "/root/repo/src/render/frame_loop.cc" "src/render/CMakeFiles/vtp_render.dir/frame_loop.cc.o" "gcc" "src/render/CMakeFiles/vtp_render.dir/frame_loop.cc.o.d"
  "/root/repo/src/render/lod.cc" "src/render/CMakeFiles/vtp_render.dir/lod.cc.o" "gcc" "src/render/CMakeFiles/vtp_render.dir/lod.cc.o.d"
  "/root/repo/src/render/scenario.cc" "src/render/CMakeFiles/vtp_render.dir/scenario.cc.o" "gcc" "src/render/CMakeFiles/vtp_render.dir/scenario.cc.o.d"
  "/root/repo/src/render/viewport_predict.cc" "src/render/CMakeFiles/vtp_render.dir/viewport_predict.cc.o" "gcc" "src/render/CMakeFiles/vtp_render.dir/viewport_predict.cc.o.d"
  "/root/repo/src/render/visibility.cc" "src/render/CMakeFiles/vtp_render.dir/visibility.cc.o" "gcc" "src/render/CMakeFiles/vtp_render.dir/visibility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/vtp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/vtp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/vtp_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
