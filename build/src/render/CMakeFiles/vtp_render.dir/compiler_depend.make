# Empty compiler generated dependencies file for vtp_render.
# This may be replaced when dependencies are built.
