file(REMOVE_RECURSE
  "CMakeFiles/vtp_render.dir/cost_model.cc.o"
  "CMakeFiles/vtp_render.dir/cost_model.cc.o.d"
  "CMakeFiles/vtp_render.dir/frame_loop.cc.o"
  "CMakeFiles/vtp_render.dir/frame_loop.cc.o.d"
  "CMakeFiles/vtp_render.dir/lod.cc.o"
  "CMakeFiles/vtp_render.dir/lod.cc.o.d"
  "CMakeFiles/vtp_render.dir/scenario.cc.o"
  "CMakeFiles/vtp_render.dir/scenario.cc.o.d"
  "CMakeFiles/vtp_render.dir/viewport_predict.cc.o"
  "CMakeFiles/vtp_render.dir/viewport_predict.cc.o.d"
  "CMakeFiles/vtp_render.dir/visibility.cc.o"
  "CMakeFiles/vtp_render.dir/visibility.cc.o.d"
  "libvtp_render.a"
  "libvtp_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
