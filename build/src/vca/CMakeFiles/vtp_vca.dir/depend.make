# Empty dependencies file for vtp_vca.
# This may be replaced when dependencies are built.
