file(REMOVE_RECURSE
  "CMakeFiles/vtp_vca.dir/pipelines.cc.o"
  "CMakeFiles/vtp_vca.dir/pipelines.cc.o.d"
  "CMakeFiles/vtp_vca.dir/profile.cc.o"
  "CMakeFiles/vtp_vca.dir/profile.cc.o.d"
  "CMakeFiles/vtp_vca.dir/session.cc.o"
  "CMakeFiles/vtp_vca.dir/session.cc.o.d"
  "CMakeFiles/vtp_vca.dir/sfu.cc.o"
  "CMakeFiles/vtp_vca.dir/sfu.cc.o.d"
  "libvtp_vca.a"
  "libvtp_vca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_vca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
