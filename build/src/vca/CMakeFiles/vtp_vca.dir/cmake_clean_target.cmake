file(REMOVE_RECURSE
  "libvtp_vca.a"
)
