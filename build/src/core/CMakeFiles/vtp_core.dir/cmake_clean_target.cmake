file(REMOVE_RECURSE
  "libvtp_core.a"
)
