file(REMOVE_RECURSE
  "CMakeFiles/vtp_core.dir/display_latency.cc.o"
  "CMakeFiles/vtp_core.dir/display_latency.cc.o.d"
  "CMakeFiles/vtp_core.dir/flags.cc.o"
  "CMakeFiles/vtp_core.dir/flags.cc.o.d"
  "CMakeFiles/vtp_core.dir/json.cc.o"
  "CMakeFiles/vtp_core.dir/json.cc.o.d"
  "CMakeFiles/vtp_core.dir/rtt_matrix.cc.o"
  "CMakeFiles/vtp_core.dir/rtt_matrix.cc.o.d"
  "CMakeFiles/vtp_core.dir/stats.cc.o"
  "CMakeFiles/vtp_core.dir/stats.cc.o.d"
  "CMakeFiles/vtp_core.dir/table.cc.o"
  "CMakeFiles/vtp_core.dir/table.cc.o.d"
  "libvtp_core.a"
  "libvtp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
