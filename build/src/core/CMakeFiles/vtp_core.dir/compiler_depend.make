# Empty compiler generated dependencies file for vtp_core.
# This may be replaced when dependencies are built.
