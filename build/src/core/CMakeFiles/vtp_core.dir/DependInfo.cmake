
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/display_latency.cc" "src/core/CMakeFiles/vtp_core.dir/display_latency.cc.o" "gcc" "src/core/CMakeFiles/vtp_core.dir/display_latency.cc.o.d"
  "/root/repo/src/core/flags.cc" "src/core/CMakeFiles/vtp_core.dir/flags.cc.o" "gcc" "src/core/CMakeFiles/vtp_core.dir/flags.cc.o.d"
  "/root/repo/src/core/json.cc" "src/core/CMakeFiles/vtp_core.dir/json.cc.o" "gcc" "src/core/CMakeFiles/vtp_core.dir/json.cc.o.d"
  "/root/repo/src/core/rtt_matrix.cc" "src/core/CMakeFiles/vtp_core.dir/rtt_matrix.cc.o" "gcc" "src/core/CMakeFiles/vtp_core.dir/rtt_matrix.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/vtp_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/vtp_core.dir/stats.cc.o.d"
  "/root/repo/src/core/table.cc" "src/core/CMakeFiles/vtp_core.dir/table.cc.o" "gcc" "src/core/CMakeFiles/vtp_core.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/vtp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/vtp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/vtp_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
