
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/capture.cc" "src/netsim/CMakeFiles/vtp_netsim.dir/capture.cc.o" "gcc" "src/netsim/CMakeFiles/vtp_netsim.dir/capture.cc.o.d"
  "/root/repo/src/netsim/event_queue.cc" "src/netsim/CMakeFiles/vtp_netsim.dir/event_queue.cc.o" "gcc" "src/netsim/CMakeFiles/vtp_netsim.dir/event_queue.cc.o.d"
  "/root/repo/src/netsim/geo.cc" "src/netsim/CMakeFiles/vtp_netsim.dir/geo.cc.o" "gcc" "src/netsim/CMakeFiles/vtp_netsim.dir/geo.cc.o.d"
  "/root/repo/src/netsim/geoip.cc" "src/netsim/CMakeFiles/vtp_netsim.dir/geoip.cc.o" "gcc" "src/netsim/CMakeFiles/vtp_netsim.dir/geoip.cc.o.d"
  "/root/repo/src/netsim/link.cc" "src/netsim/CMakeFiles/vtp_netsim.dir/link.cc.o" "gcc" "src/netsim/CMakeFiles/vtp_netsim.dir/link.cc.o.d"
  "/root/repo/src/netsim/network.cc" "src/netsim/CMakeFiles/vtp_netsim.dir/network.cc.o" "gcc" "src/netsim/CMakeFiles/vtp_netsim.dir/network.cc.o.d"
  "/root/repo/src/netsim/trace_io.cc" "src/netsim/CMakeFiles/vtp_netsim.dir/trace_io.cc.o" "gcc" "src/netsim/CMakeFiles/vtp_netsim.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/vtp_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
