file(REMOVE_RECURSE
  "libvtp_netsim.a"
)
