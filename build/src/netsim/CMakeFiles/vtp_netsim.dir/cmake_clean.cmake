file(REMOVE_RECURSE
  "CMakeFiles/vtp_netsim.dir/capture.cc.o"
  "CMakeFiles/vtp_netsim.dir/capture.cc.o.d"
  "CMakeFiles/vtp_netsim.dir/event_queue.cc.o"
  "CMakeFiles/vtp_netsim.dir/event_queue.cc.o.d"
  "CMakeFiles/vtp_netsim.dir/geo.cc.o"
  "CMakeFiles/vtp_netsim.dir/geo.cc.o.d"
  "CMakeFiles/vtp_netsim.dir/geoip.cc.o"
  "CMakeFiles/vtp_netsim.dir/geoip.cc.o.d"
  "CMakeFiles/vtp_netsim.dir/link.cc.o"
  "CMakeFiles/vtp_netsim.dir/link.cc.o.d"
  "CMakeFiles/vtp_netsim.dir/network.cc.o"
  "CMakeFiles/vtp_netsim.dir/network.cc.o.d"
  "CMakeFiles/vtp_netsim.dir/trace_io.cc.o"
  "CMakeFiles/vtp_netsim.dir/trace_io.cc.o.d"
  "libvtp_netsim.a"
  "libvtp_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
