# Empty dependencies file for vtp_netsim.
# This may be replaced when dependencies are built.
