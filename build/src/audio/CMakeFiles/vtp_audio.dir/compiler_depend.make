# Empty compiler generated dependencies file for vtp_audio.
# This may be replaced when dependencies are built.
