file(REMOVE_RECURSE
  "libvtp_audio.a"
)
