file(REMOVE_RECURSE
  "CMakeFiles/vtp_audio.dir/codec.cc.o"
  "CMakeFiles/vtp_audio.dir/codec.cc.o.d"
  "CMakeFiles/vtp_audio.dir/frame.cc.o"
  "CMakeFiles/vtp_audio.dir/frame.cc.o.d"
  "CMakeFiles/vtp_audio.dir/speech_source.cc.o"
  "CMakeFiles/vtp_audio.dir/speech_source.cc.o.d"
  "libvtp_audio.a"
  "libvtp_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
