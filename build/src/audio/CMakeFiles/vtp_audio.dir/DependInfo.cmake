
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/codec.cc" "src/audio/CMakeFiles/vtp_audio.dir/codec.cc.o" "gcc" "src/audio/CMakeFiles/vtp_audio.dir/codec.cc.o.d"
  "/root/repo/src/audio/frame.cc" "src/audio/CMakeFiles/vtp_audio.dir/frame.cc.o" "gcc" "src/audio/CMakeFiles/vtp_audio.dir/frame.cc.o.d"
  "/root/repo/src/audio/speech_source.cc" "src/audio/CMakeFiles/vtp_audio.dir/speech_source.cc.o" "gcc" "src/audio/CMakeFiles/vtp_audio.dir/speech_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/vtp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/vtp_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
