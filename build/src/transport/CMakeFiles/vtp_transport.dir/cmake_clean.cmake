file(REMOVE_RECURSE
  "CMakeFiles/vtp_transport.dir/classifier.cc.o"
  "CMakeFiles/vtp_transport.dir/classifier.cc.o.d"
  "CMakeFiles/vtp_transport.dir/fec.cc.o"
  "CMakeFiles/vtp_transport.dir/fec.cc.o.d"
  "CMakeFiles/vtp_transport.dir/playout.cc.o"
  "CMakeFiles/vtp_transport.dir/playout.cc.o.d"
  "CMakeFiles/vtp_transport.dir/quic.cc.o"
  "CMakeFiles/vtp_transport.dir/quic.cc.o.d"
  "CMakeFiles/vtp_transport.dir/rtp.cc.o"
  "CMakeFiles/vtp_transport.dir/rtp.cc.o.d"
  "CMakeFiles/vtp_transport.dir/tcp_ping.cc.o"
  "CMakeFiles/vtp_transport.dir/tcp_ping.cc.o.d"
  "libvtp_transport.a"
  "libvtp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
