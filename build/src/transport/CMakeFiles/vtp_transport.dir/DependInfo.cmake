
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/classifier.cc" "src/transport/CMakeFiles/vtp_transport.dir/classifier.cc.o" "gcc" "src/transport/CMakeFiles/vtp_transport.dir/classifier.cc.o.d"
  "/root/repo/src/transport/fec.cc" "src/transport/CMakeFiles/vtp_transport.dir/fec.cc.o" "gcc" "src/transport/CMakeFiles/vtp_transport.dir/fec.cc.o.d"
  "/root/repo/src/transport/playout.cc" "src/transport/CMakeFiles/vtp_transport.dir/playout.cc.o" "gcc" "src/transport/CMakeFiles/vtp_transport.dir/playout.cc.o.d"
  "/root/repo/src/transport/quic.cc" "src/transport/CMakeFiles/vtp_transport.dir/quic.cc.o" "gcc" "src/transport/CMakeFiles/vtp_transport.dir/quic.cc.o.d"
  "/root/repo/src/transport/rtp.cc" "src/transport/CMakeFiles/vtp_transport.dir/rtp.cc.o" "gcc" "src/transport/CMakeFiles/vtp_transport.dir/rtp.cc.o.d"
  "/root/repo/src/transport/tcp_ping.cc" "src/transport/CMakeFiles/vtp_transport.dir/tcp_ping.cc.o" "gcc" "src/transport/CMakeFiles/vtp_transport.dir/tcp_ping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/vtp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/vtp_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
