# Empty compiler generated dependencies file for vtp_transport.
# This may be replaced when dependencies are built.
