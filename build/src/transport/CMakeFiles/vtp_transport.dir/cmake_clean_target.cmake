file(REMOVE_RECURSE
  "libvtp_transport.a"
)
