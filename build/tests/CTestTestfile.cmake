# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_compress "/root/repo/build/tests/test_compress")
set_tests_properties(test_compress PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_netsim "/root/repo/build/tests/test_netsim")
set_tests_properties(test_netsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_transport "/root/repo/build/tests/test_transport")
set_tests_properties(test_transport PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mesh "/root/repo/build/tests/test_mesh")
set_tests_properties(test_mesh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_semantic "/root/repo/build/tests/test_semantic")
set_tests_properties(test_semantic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_video "/root/repo/build/tests/test_video")
set_tests_properties(test_video PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_render "/root/repo/build/tests/test_render")
set_tests_properties(test_render PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vca "/root/repo/build/tests/test_vca")
set_tests_properties(test_vca PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_audio "/root/repo/build/tests/test_audio")
set_tests_properties(test_audio PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_transport_ext "/root/repo/build/tests/test_transport_ext")
set_tests_properties(test_transport_ext PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tools "/root/repo/build/tests/test_tools")
set_tests_properties(test_tools PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fuzz "/root/repo/build/tests/test_fuzz")
set_tests_properties(test_fuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;vtp_test;/root/repo/tests/CMakeLists.txt;0;")
