file(REMOVE_RECURSE
  "CMakeFiles/test_video.dir/test_video.cc.o"
  "CMakeFiles/test_video.dir/test_video.cc.o.d"
  "test_video"
  "test_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
