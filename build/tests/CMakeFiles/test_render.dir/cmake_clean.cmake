file(REMOVE_RECURSE
  "CMakeFiles/test_render.dir/test_render.cc.o"
  "CMakeFiles/test_render.dir/test_render.cc.o.d"
  "test_render"
  "test_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
