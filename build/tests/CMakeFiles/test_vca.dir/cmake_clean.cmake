file(REMOVE_RECURSE
  "CMakeFiles/test_vca.dir/test_vca.cc.o"
  "CMakeFiles/test_vca.dir/test_vca.cc.o.d"
  "test_vca"
  "test_vca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
