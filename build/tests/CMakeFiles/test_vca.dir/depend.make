# Empty dependencies file for test_vca.
# This may be replaced when dependencies are built.
