file(REMOVE_RECURSE
  "CMakeFiles/test_netsim.dir/test_netsim.cc.o"
  "CMakeFiles/test_netsim.dir/test_netsim.cc.o.d"
  "test_netsim"
  "test_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
