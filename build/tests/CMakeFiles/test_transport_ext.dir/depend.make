# Empty dependencies file for test_transport_ext.
# This may be replaced when dependencies are built.
