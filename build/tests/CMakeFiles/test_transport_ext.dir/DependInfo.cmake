
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_transport_ext.cc" "tests/CMakeFiles/test_transport_ext.dir/test_transport_ext.cc.o" "gcc" "tests/CMakeFiles/test_transport_ext.dir/test_transport_ext.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vca/CMakeFiles/vtp_vca.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vtp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/vtp_render.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vtp_video.dir/DependInfo.cmake"
  "/root/repo/build/src/semantic/CMakeFiles/vtp_semantic.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/vtp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/vtp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/vtp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/vtp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/vtp_audio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
