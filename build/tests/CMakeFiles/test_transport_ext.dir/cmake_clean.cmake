file(REMOVE_RECURSE
  "CMakeFiles/test_transport_ext.dir/test_transport_ext.cc.o"
  "CMakeFiles/test_transport_ext.dir/test_transport_ext.cc.o.d"
  "test_transport_ext"
  "test_transport_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
