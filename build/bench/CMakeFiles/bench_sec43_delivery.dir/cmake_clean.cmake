file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_delivery.dir/bench_sec43_delivery.cc.o"
  "CMakeFiles/bench_sec43_delivery.dir/bench_sec43_delivery.cc.o.d"
  "bench_sec43_delivery"
  "bench_sec43_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
