# Empty dependencies file for bench_sec43_delivery.
# This may be replaced when dependencies are built.
