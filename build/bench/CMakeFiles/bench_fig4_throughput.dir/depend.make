# Empty dependencies file for bench_fig4_throughput.
# This may be replaced when dependencies are built.
