# Empty dependencies file for bench_fig5_visibility.
# This may be replaced when dependencies are built.
