file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_visibility.dir/bench_fig5_visibility.cc.o"
  "CMakeFiles/bench_fig5_visibility.dir/bench_fig5_visibility.cc.o.d"
  "bench_fig5_visibility"
  "bench_fig5_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
