file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rtt.dir/bench_table1_rtt.cc.o"
  "CMakeFiles/bench_table1_rtt.dir/bench_table1_rtt.cc.o.d"
  "bench_table1_rtt"
  "bench_table1_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
