# Empty dependencies file for bench_table1_rtt.
# This may be replaced when dependencies are built.
