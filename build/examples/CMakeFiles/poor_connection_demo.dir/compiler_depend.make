# Empty compiler generated dependencies file for poor_connection_demo.
# This may be replaced when dependencies are built.
