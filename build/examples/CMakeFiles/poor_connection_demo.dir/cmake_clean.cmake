file(REMOVE_RECURSE
  "CMakeFiles/poor_connection_demo.dir/poor_connection_demo.cpp.o"
  "CMakeFiles/poor_connection_demo.dir/poor_connection_demo.cpp.o.d"
  "poor_connection_demo"
  "poor_connection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poor_connection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
