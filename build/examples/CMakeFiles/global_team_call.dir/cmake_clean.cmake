file(REMOVE_RECURSE
  "CMakeFiles/global_team_call.dir/global_team_call.cpp.o"
  "CMakeFiles/global_team_call.dir/global_team_call.cpp.o.d"
  "global_team_call"
  "global_team_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_team_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
