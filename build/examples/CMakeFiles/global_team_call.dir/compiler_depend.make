# Empty compiler generated dependencies file for global_team_call.
# This may be replaced when dependencies are built.
