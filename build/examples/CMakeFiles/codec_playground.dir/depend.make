# Empty dependencies file for codec_playground.
# This may be replaced when dependencies are built.
