file(REMOVE_RECURSE
  "CMakeFiles/codec_playground.dir/codec_playground.cpp.o"
  "CMakeFiles/codec_playground.dir/codec_playground.cpp.o.d"
  "codec_playground"
  "codec_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
