file(REMOVE_RECURSE
  "CMakeFiles/capture_analysis.dir/capture_analysis.cpp.o"
  "CMakeFiles/capture_analysis.dir/capture_analysis.cpp.o.d"
  "capture_analysis"
  "capture_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
