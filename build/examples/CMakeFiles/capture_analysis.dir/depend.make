# Empty dependencies file for capture_analysis.
# This may be replaced when dependencies are built.
