file(REMOVE_RECURSE
  "CMakeFiles/vtp.dir/vtp.cc.o"
  "CMakeFiles/vtp.dir/vtp.cc.o.d"
  "vtp"
  "vtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
