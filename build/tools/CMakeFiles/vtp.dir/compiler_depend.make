# Empty compiler generated dependencies file for vtp.
# This may be replaced when dependencies are built.
