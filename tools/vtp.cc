// vtp — the command-line measurement tool.
//
// The paper commits to releasing "the source code of our tools"; this is
// that tool for the simulated stack. Subcommands:
//
//   vtp run    — run a telepresence session and report what the testbed
//                would measure (table or --json), with optional tc-style
//                impairments and a --dump-trace=FILE packet-trace export.
//   vtp rtt    — Table 1-style TCP-ping RTT matrix between arbitrary
//                client metros and VCA server fleets.
//   vtp probe  — the §4.3 display-latency probe at a given injected delay.
//   vtp knobs  — every VTP_* environment knob the build understands
//                (also reachable as `vtp --knobs`).
//
// Examples:
//   vtp run --app=facetime --metros=SanFrancisco,NewYork --duration=20
//   vtp run --app=webex --metros=SanFrancisco,Chicago,Miami \
//           --devices=vp,mac,ipad --cap-uplink-kbps=1200 --json
//   vtp run --app=facetime --metros=SanFrancisco,NewYork --obs-dump=obs.json
//   vtp rtt --clients=SanFrancisco,Dallas,NewYork --apps=facetime,zoom
//   vtp probe --mode=remote --delay-ms=500
#include <fstream>
#include <iostream>

#include "core/display_latency.h"
#include "core/flags.h"
#include "core/json.h"
#include "core/knobs.h"
#include "core/rtt_matrix.h"
#include "core/table.h"
#include "netsim/trace_io.h"
#include "obs/snapshot.h"
#include "vca/session.h"

using namespace vtp;

namespace {

int Usage() {
  std::cerr <<
      R"(usage: vtp <run|rtt|probe> [flags]

vtp run   --app=facetime|zoom|webex|teams --metros=A,B[,C...]
          [--devices=vp|mac|ipad|iphone per user] [--duration=SECONDS]
          [--seed=N] [--strategy=nearest|geo] [--no-audio]
          [--cap-uplink-kbps=K] [--delay-ms=D] [--loss=P]   (applied to user 0)
          [--dump-trace=FILE] [--obs-dump=FILE] [--json]
vtp rtt   --clients=MetroA,MetroB,... [--apps=facetime,zoom,webex,teams]
          [--servers=MetroX,MetroY,...] [--pings=N] [--json]
vtp probe [--mode=local|remote] [--delay-ms=D] [--json]
vtp knobs [--json]          (also: vtp --knobs)
)";
  return 2;
}

vca::VcaApp ParseApp(const std::string& name) {
  if (name == "facetime") return vca::VcaApp::kFaceTime;
  if (name == "zoom") return vca::VcaApp::kZoom;
  if (name == "webex") return vca::VcaApp::kWebex;
  if (name == "teams") return vca::VcaApp::kTeams;
  throw std::invalid_argument("unknown app: " + name);
}

vca::DeviceType ParseDevice(const std::string& name) {
  if (name == "vp" || name == "visionpro") return vca::DeviceType::kVisionPro;
  if (name == "mac" || name == "macbook") return vca::DeviceType::kMacBook;
  if (name == "ipad") return vca::DeviceType::kIpad;
  if (name == "iphone") return vca::DeviceType::kIphone;
  throw std::invalid_argument("unknown device: " + name);
}

void PrintSummaryJson(core::JsonWriter& w, const core::Summary& s) {
  w.BeginObject();
  w.Key("mean");
  w.Number(s.mean);
  w.Key("stddev");
  w.Number(s.stddev);
  w.Key("p5");
  w.Number(s.p5);
  w.Key("p50");
  w.Number(s.p50);
  w.Key("p95");
  w.Number(s.p95);
  w.EndObject();
}

int CmdRun(const core::Flags& flags) {
  vca::SessionConfig config;
  config.app = ParseApp(flags.Get("app", "facetime"));
  const std::vector<std::string> metros = flags.GetList("metros");
  if (metros.size() < 2) {
    std::cerr << "vtp run: need --metros=A,B with at least two metros\n";
    return 2;
  }
  const std::vector<std::string> devices = flags.GetList("devices");
  for (std::size_t i = 0; i < metros.size(); ++i) {
    vca::Participant p;
    p.name = "U" + std::to_string(i + 1);
    p.metro = metros[i];
    p.device = i < devices.size() ? ParseDevice(devices[i]) : vca::DeviceType::kVisionPro;
    config.participants.push_back(std::move(p));
  }
  config.duration = net::Seconds(flags.GetDouble("duration", 20));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  config.enable_audio = !flags.GetBool("no-audio", false);
  if (flags.Get("strategy", "nearest") == "geo") {
    config.strategy = vca::ServerStrategy::kGeoDistributed;
  }

  vca::TelepresenceSession session(std::move(config));

  // Impairments on user 0's uplink, like tc at its AP.
  net::Netem netem = session.UplinkNetem(0);
  if (flags.Has("cap-uplink-kbps")) {
    netem.SetRateBps(flags.GetDouble("cap-uplink-kbps", 0) * 1e3);
  }
  if (flags.Has("delay-ms")) netem.SetDelay(net::Millis(flags.GetDouble("delay-ms", 0)));
  if (flags.Has("loss")) netem.SetLoss(flags.GetDouble("loss", 0));

  session.Run();
  const vca::SessionReport report = session.BuildReport();

  if (const std::string path = flags.Get("dump-trace"); !path.empty()) {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "vtp run: cannot write " << path << "\n";
      return 1;
    }
    net::WriteCaptureCsv(session.capture(0), os);
    std::cerr << "wrote " << session.capture(0).records().size() << " packets to " << path
              << "\n";
  }

  if (const std::string path = flags.Get("obs-dump"); !path.empty()) {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "vtp run: cannot write " << path << "\n";
      return 1;
    }
    const obs::Snapshot snap =
        obs::Snapshot::Capture(session.sim().metrics(), &session.sim().tracer());
    os << snap.ToJson() << "\n";
    std::cerr << "wrote obs snapshot (" << snap.counters.size() << " counters, "
              << snap.spans << " spans) to " << path << "\n";
  }

  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("app");
    w.String(report.app);
    w.Key("persona");
    w.String(report.persona_kind == vca::PersonaKind::kSpatial ? "spatial" : "2d");
    w.Key("p2p");
    w.Bool(report.p2p);
    w.Key("servers");
    w.BeginArray();
    for (const std::string& s : report.server_metros) w.String(s);
    w.EndArray();
    w.Key("participants");
    w.BeginArray();
    for (const vca::ParticipantReport& p : report.participants) {
      w.BeginObject();
      w.Key("name");
      w.String(p.name);
      w.Key("metro");
      w.String(p.metro);
      w.Key("protocol");
      w.String(p.uplink_protocol);
      w.Key("rtp_payload_type");
      w.Int(p.rtp_payload_type);
      w.Key("uplink_mbps");
      PrintSummaryJson(w, p.uplink_mbps);
      w.Key("downlink_mbps");
      PrintSummaryJson(w, p.downlink_mbps);
      w.Key("gpu_ms");
      PrintSummaryJson(w, p.gpu_ms);
      w.Key("cpu_ms");
      PrintSummaryJson(w, p.cpu_ms);
      w.Key("triangles_mean");
      w.Number(p.triangles.mean);
      w.Key("persona_available");
      w.Number(p.persona_available_fraction);
      w.Key("deadline_miss_rate");
      w.Number(p.deadline_miss_rate);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::cout << w.str() << "\n";
    return 0;
  }

  std::cout << "app " << report.app << ", persona "
            << (report.persona_kind == vca::PersonaKind::kSpatial ? "spatial" : "2D")
            << ", " << (report.p2p ? "P2P" : "server-relayed");
  for (const std::string& s : report.server_metros) std::cout << " " << s;
  std::cout << "\n\n";
  core::TextTable table;
  table.SetHeader({"user", "metro", "proto", "up Mbps", "down Mbps", "GPU ms", "CPU ms",
                   "avail"});
  for (const vca::ParticipantReport& p : report.participants) {
    table.AddRow({p.name, p.metro, p.uplink_protocol, core::Fmt(p.uplink_mbps.mean),
                  core::Fmt(p.downlink_mbps.mean), core::Fmt(p.gpu_ms.mean),
                  core::Fmt(p.cpu_ms.mean),
                  core::Fmt(100 * p.persona_available_fraction, 1) + "%"});
  }
  table.Print(std::cout);
  return 0;
}

int CmdRtt(const core::Flags& flags) {
  core::RttProbeSpec spec;
  for (const std::string& metro : flags.GetList("clients")) {
    spec.clients.push_back({metro, metro});
  }
  if (spec.clients.empty()) {
    spec.clients = {{"W", "SanFrancisco"}, {"M", "Dallas"}, {"E", "NewYork"}};
  }
  for (const std::string& app_name : flags.GetList("apps")) {
    const vca::VcaProfile& profile = vca::GetProfile(ParseApp(app_name));
    for (const std::string_view metro : profile.server_metros) {
      spec.servers.push_back({std::string(profile.name), std::string(metro)});
    }
  }
  for (const std::string& metro : flags.GetList("servers")) {
    spec.servers.push_back({metro, metro});
  }
  if (spec.servers.empty()) {
    std::cerr << "vtp rtt: need --apps=... and/or --servers=...\n";
    return 2;
  }
  spec.pings_per_pair = static_cast<int>(flags.GetInt("pings", 10));
  const core::RttMatrix result = core::MeasureRttMatrix(spec);

  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("servers");
    w.BeginArray();
    for (std::size_t s = 0; s < spec.servers.size(); ++s) {
      w.BeginObject();
      w.Key("label");
      w.String(spec.servers[s].label);
      w.Key("metro");
      w.String(spec.servers[s].metro);
      w.Key("region");
      w.String(std::string(net::RegionCode(result.server_regions[s])));
      w.EndObject();
    }
    w.EndArray();
    w.Key("rtt_ms");
    w.BeginArray();
    for (const auto& row : result.rtt_ms) {
      w.BeginArray();
      for (const core::Summary& s : row) w.Number(s.mean);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    std::cout << w.str() << "\n";
    return 0;
  }

  core::TextTable table;
  std::vector<std::string> header = {"client"};
  for (std::size_t s = 0; s < spec.servers.size(); ++s) {
    header.push_back(spec.servers[s].label + "." +
                     std::string(net::RegionCode(result.server_regions[s])));
  }
  table.SetHeader(header);
  for (std::size_t c = 0; c < spec.clients.size(); ++c) {
    std::vector<std::string> row = {spec.clients[c].label};
    for (const core::Summary& s : result.rtt_ms[c]) row.push_back(core::Fmt(s.mean, 1));
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}

int CmdProbe(const core::Flags& flags) {
  core::DisplayLatencyConfig config;
  config.mode = flags.Get("mode", "local") == "remote"
                    ? core::DeliveryMode::kRemotePrerendered
                    : core::DeliveryMode::kLocalReconstruction;
  config.injected_delay = net::Millis(flags.GetDouble("delay-ms", 0));
  const core::DisplayLatencyResult r = core::MeasureDisplayLatency(config);

  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("mode");
    w.String(flags.Get("mode", "local"));
    w.Key("injected_delay_ms");
    w.Number(net::ToMillis(config.injected_delay));
    w.Key("real_world_ms");
    w.Number(r.real_world_ms);
    w.Key("persona_ms");
    w.Number(r.persona_ms);
    w.Key("difference_ms");
    w.Number(r.difference_ms);
    w.EndObject();
    std::cout << w.str() << "\n";
  } else {
    std::cout << "real-world: " << core::Fmt(r.real_world_ms, 1) << " ms, persona: "
              << core::Fmt(r.persona_ms, 1) << " ms, difference: "
              << core::Fmt(r.difference_ms, 1) << " ms\n";
  }
  return 0;
}

// Dumps every registered VTP_* knob: name, type, default, the value it
// currently resolves to, and whether the environment overrides it. The
// catalogue is populated by including core/knobs.h above — each knob handle
// self-registers with core::Config during static initialization.
int CmdKnobs(const core::Flags& flags) {
  const std::vector<const core::Config::KnobInfo*> knobs = core::Config::Instance().List();

  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("knobs");
    w.BeginArray();
    for (const core::Config::KnobInfo* k : knobs) {
      w.BeginObject();
      w.Key("name");
      w.String(k->name);
      w.Key("type");
      w.String(k->type);
      w.Key("default");
      w.String(k->def);
      w.Key("current");
      w.String(k->current());
      w.Key("overridden");
      w.Bool(k->overridden());
      w.Key("help");
      w.String(k->help);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::cout << w.str() << "\n";
    return 0;
  }

  core::TextTable table;
  table.SetHeader({"knob", "type", "default", "current", "set", "help"});
  for (const core::Config::KnobInfo* k : knobs) {
    table.AddRow({k->name, k->type, k->def, k->current(), k->overridden() ? "env" : "-",
                  k->help});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const core::Flags flags(argc, argv);
  if (flags.GetBool("knobs", false)) return CmdKnobs(flags);
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional().front();
  try {
    if (command == "run") return CmdRun(flags);
    if (command == "rtt") return CmdRtt(flags);
    if (command == "probe") return CmdProbe(flags);
    if (command == "knobs") return CmdKnobs(flags);
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "vtp " << command << ": " << e.what() << "\n";
    return 1;
  }
}
