// vtp — the command-line measurement tool.
//
// The paper commits to releasing "the source code of our tools"; this is
// that tool for the simulated stack. Subcommands:
//
//   vtp run    — run a telepresence session and report what the testbed
//                would measure (table or --json), with optional tc-style
//                impairments and a --dump-trace=FILE packet-trace export.
//   vtp serve  — host a real SFU process on UDP sockets (the socket Medium
//                backend, DESIGN §14); clients dial in over the wire.
//   vtp client — generate N personas of traffic against a vtp serve
//                (VTP_MEDIUM=socket) or a self-contained in-process SFU
//                (VTP_MEDIUM=sim, the default — deterministic smoke).
//   vtp rtt    — Table 1-style TCP-ping RTT matrix between arbitrary
//                client metros and VCA server fleets.
//   vtp probe  — the §4.3 display-latency probe at a given injected delay.
//   vtp knobs  — every VTP_* environment knob the build understands
//                (also reachable as `vtp --knobs`).
//
// All subcommands share one flag parser (core::Flags) and one
// --obs-dump=FILE snapshot path.
//
// Examples:
//   vtp run --app=facetime --metros=SanFrancisco,NewYork --duration=20
//   vtp run --app=webex --metros=SanFrancisco,Chicago,Miami \
//           --devices=vp,mac,ipad --cap-uplink-kbps=1200 --json
//   vtp run --app=facetime --metros=SanFrancisco,NewYork --obs-dump=obs.json
//   vtp serve --port=4433 --duration=10 --obs-dump=server_obs.json
//   VTP_MEDIUM=socket vtp client --connect=127.0.0.1:4433 --personas=5 \
//           --duration=5 --obs-dump=client_obs.json
//   vtp rtt --clients=SanFrancisco,Dallas,NewYork --apps=facetime,zoom
//   vtp probe --mode=remote --delay-ms=500
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/display_latency.h"
#include "core/flags.h"
#include "core/json.h"
#include "core/knobs.h"
#include "core/rtt_matrix.h"
#include "core/table.h"
#include "netsim/socket_medium.h"
#include "netsim/trace_io.h"
#include "obs/snapshot.h"
#include "transport/taps.h"
#include "vca/session.h"
#include "vca/sfu.h"

using namespace vtp;

namespace {

int Usage() {
  std::cerr <<
      R"(usage: vtp <run|serve|client|rtt|probe|knobs> [flags]

vtp run    --app=facetime|zoom|webex|teams --metros=A,B[,C...]
           [--devices=vp|mac|ipad|iphone per user] [--duration=SECONDS]
           [--seed=N] [--strategy=nearest|geo] [--no-audio]
           [--cap-uplink-kbps=K] [--delay-ms=D] [--loss=P]   (applied to user 0)
           [--dump-trace=FILE] [--obs-dump=FILE] [--json]
vtp serve  [--host=ADDR] [--port=P] [--duration=SECONDS (0 = until SIGINT)]
           [--obs-dump=FILE] [--json]
vtp client [--connect=HOST:PORT] [--personas=N] [--duration=SECONDS]
           [--port-base=P] [--id-base=N] [--fps=F] [--seed=N]
           [--medium=sim|socket] [--obs-dump=FILE] [--json]
vtp rtt    --clients=MetroA,MetroB,... [--apps=facetime,zoom,webex,teams]
           [--servers=MetroX,MetroY,...] [--pings=N] [--json]
vtp probe  [--mode=local|remote] [--delay-ms=D] [--json]
vtp knobs  [--json]          (also: vtp --knobs)

serve/client defaults come from the VTP_LISTEN_ADDR, VTP_CONNECT, and
VTP_MEDIUM knobs (see vtp knobs).
)";
  return 2;
}

/// The one --obs-dump=FILE path every subcommand shares: snapshot of `sim`'s
/// registry (+ tracer spans) as JSON. Returns false on write failure.
bool DumpObsSnapshot(const core::Flags& flags, const char* cmd, net::Simulator& sim) {
  const std::string path = flags.Get("obs-dump");
  if (path.empty()) return true;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "vtp " << cmd << ": cannot write " << path << "\n";
    return false;
  }
  const obs::Snapshot snap = obs::Snapshot::Capture(sim.metrics(), &sim.tracer());
  os << snap.ToJson() << "\n";
  std::cerr << "wrote obs snapshot (" << snap.counters.size() << " counters, " << snap.spans
            << " spans) to " << path << "\n";
  return true;
}

/// Figure-4-style per-stage latency table from the tracer's completed spans.
void PrintStageTable(const obs::Snapshot& snap, std::ostream& out) {
  if (snap.stages.empty()) {
    out << "(no completed frame spans — per-stage latency unavailable)\n";
    return;
  }
  core::TextTable table;
  table.SetHeader({"stage", "mean ms", "p50 ms", "p95 ms"});
  for (const obs::Snapshot::StageRow& row : snap.stages) {
    table.AddRow({row.label, core::Fmt(row.summary.mean, 2), core::Fmt(row.summary.p50, 2),
                  core::Fmt(row.summary.p95, 2)});
  }
  table.Print(out);
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

vca::VcaApp ParseApp(const std::string& name) {
  if (name == "facetime") return vca::VcaApp::kFaceTime;
  if (name == "zoom") return vca::VcaApp::kZoom;
  if (name == "webex") return vca::VcaApp::kWebex;
  if (name == "teams") return vca::VcaApp::kTeams;
  throw std::invalid_argument("unknown app: " + name);
}

vca::DeviceType ParseDevice(const std::string& name) {
  if (name == "vp" || name == "visionpro") return vca::DeviceType::kVisionPro;
  if (name == "mac" || name == "macbook") return vca::DeviceType::kMacBook;
  if (name == "ipad") return vca::DeviceType::kIpad;
  if (name == "iphone") return vca::DeviceType::kIphone;
  throw std::invalid_argument("unknown device: " + name);
}

void PrintSummaryJson(core::JsonWriter& w, const core::Summary& s) {
  w.BeginObject();
  w.Key("mean");
  w.Number(s.mean);
  w.Key("stddev");
  w.Number(s.stddev);
  w.Key("p5");
  w.Number(s.p5);
  w.Key("p50");
  w.Number(s.p50);
  w.Key("p95");
  w.Number(s.p95);
  w.EndObject();
}

int CmdRun(const core::Flags& flags) {
  vca::SessionConfig config;
  config.app = ParseApp(flags.Get("app", "facetime"));
  const std::vector<std::string> metros = flags.GetList("metros");
  if (metros.size() < 2) {
    std::cerr << "vtp run: need --metros=A,B with at least two metros\n";
    return 2;
  }
  const std::vector<std::string> devices = flags.GetList("devices");
  for (std::size_t i = 0; i < metros.size(); ++i) {
    vca::Participant p;
    p.name = "U" + std::to_string(i + 1);
    p.metro = metros[i];
    p.device = i < devices.size() ? ParseDevice(devices[i]) : vca::DeviceType::kVisionPro;
    config.participants.push_back(std::move(p));
  }
  config.duration = net::Seconds(flags.GetDouble("duration", 20));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  config.enable_audio = !flags.GetBool("no-audio", false);
  if (flags.Get("strategy", "nearest") == "geo") {
    config.strategy = vca::ServerStrategy::kGeoDistributed;
  }

  vca::TelepresenceSession session(std::move(config));

  // Impairments on user 0's uplink, like tc at its AP.
  net::Netem netem = session.UplinkNetem(0);
  if (flags.Has("cap-uplink-kbps")) {
    netem.SetRateBps(flags.GetDouble("cap-uplink-kbps", 0) * 1e3);
  }
  if (flags.Has("delay-ms")) netem.SetDelay(net::Millis(flags.GetDouble("delay-ms", 0)));
  if (flags.Has("loss")) netem.SetLoss(flags.GetDouble("loss", 0));

  session.Run();
  const vca::SessionReport report = session.BuildReport();

  if (const std::string path = flags.Get("dump-trace"); !path.empty()) {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "vtp run: cannot write " << path << "\n";
      return 1;
    }
    net::WriteCaptureCsv(session.capture(0), os);
    std::cerr << "wrote " << session.capture(0).records().size() << " packets to " << path
              << "\n";
  }

  if (!DumpObsSnapshot(flags, "run", session.sim())) return 1;

  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("app");
    w.String(report.app);
    w.Key("persona");
    w.String(report.persona_kind == vca::PersonaKind::kSpatial ? "spatial" : "2d");
    w.Key("p2p");
    w.Bool(report.p2p);
    w.Key("servers");
    w.BeginArray();
    for (const std::string& s : report.server_metros) w.String(s);
    w.EndArray();
    w.Key("participants");
    w.BeginArray();
    for (const vca::ParticipantReport& p : report.participants) {
      w.BeginObject();
      w.Key("name");
      w.String(p.name);
      w.Key("metro");
      w.String(p.metro);
      w.Key("protocol");
      w.String(p.uplink_protocol);
      w.Key("rtp_payload_type");
      w.Int(p.rtp_payload_type);
      w.Key("uplink_mbps");
      PrintSummaryJson(w, p.uplink_mbps);
      w.Key("downlink_mbps");
      PrintSummaryJson(w, p.downlink_mbps);
      w.Key("gpu_ms");
      PrintSummaryJson(w, p.gpu_ms);
      w.Key("cpu_ms");
      PrintSummaryJson(w, p.cpu_ms);
      w.Key("triangles_mean");
      w.Number(p.triangles.mean);
      w.Key("persona_available");
      w.Number(p.persona_available_fraction);
      w.Key("deadline_miss_rate");
      w.Number(p.deadline_miss_rate);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::cout << w.str() << "\n";
    return 0;
  }

  std::cout << "app " << report.app << ", persona "
            << (report.persona_kind == vca::PersonaKind::kSpatial ? "spatial" : "2D")
            << ", " << (report.p2p ? "P2P" : "server-relayed");
  for (const std::string& s : report.server_metros) std::cout << " " << s;
  std::cout << "\n\n";
  core::TextTable table;
  table.SetHeader({"user", "metro", "proto", "up Mbps", "down Mbps", "GPU ms", "CPU ms",
                   "avail"});
  for (const vca::ParticipantReport& p : report.participants) {
    table.AddRow({p.name, p.metro, p.uplink_protocol, core::Fmt(p.uplink_mbps.mean),
                  core::Fmt(p.downlink_mbps.mean), core::Fmt(p.gpu_ms.mean),
                  core::Fmt(p.cpu_ms.mean),
                  core::Fmt(100 * p.persona_available_fraction, 1) + "%"});
  }
  table.Print(std::cout);
  return 0;
}

// ---- serve / client: the socket-backend SFU and persona load generator ----

/// Splits "host:port"; throws std::invalid_argument on malformed input.
std::pair<std::string, std::uint16_t> ParseHostPort(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon + 1 >= s.size()) {
    throw std::invalid_argument("expected HOST:PORT, got: " + s);
  }
  return {s.substr(0, colon), static_cast<std::uint16_t>(std::stoi(s.substr(colon + 1)))};
}

int CmdServe(const core::Flags& flags) {
  const std::string host = flags.Get("host", core::knobs::kListenAddr.Get());
  const auto port = static_cast<std::uint16_t>(flags.GetInt("port", 4433));
  const double duration_s = flags.GetDouble("duration", 0);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  net::SocketMedium medium(seed, host);
  medium.sim().tracer().Enable(/*max_spans=*/8192);
  vca::SfuServer sfu(&medium, medium.local_node(), port, vca::TransportKind::kQuicDatagram);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::cerr << "vtp serve: SFU on " << host << ":" << port
            << (duration_s > 0 ? " for " + core::Fmt(duration_s, 1) + " s"
                               : " until SIGINT")
            << "\n";

  const net::SimTime end = duration_s > 0 ? net::Seconds(duration_s) : 0;
  while (!g_stop && (end == 0 || medium.sim().now() < end)) medium.Pump(/*max_wait_ms=*/100);

  const net::WallClockStats& wall = medium.wall_stats();
  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("forwarded");
    w.Int(static_cast<std::int64_t>(sfu.forwarded_count()));
    w.Key("datagrams_received");
    w.Int(static_cast<std::int64_t>(medium.datagrams_received()));
    w.Key("datagrams_sent");
    w.Int(static_cast<std::int64_t>(medium.datagrams_sent()));
    w.Key("timers_fired");
    w.Int(static_cast<std::int64_t>(wall.timers_fired));
    w.Key("late_ticks");
    w.Int(static_cast<std::int64_t>(wall.late_ticks));
    w.Key("early_fires");
    w.Int(static_cast<std::int64_t>(wall.early_fires));
    w.EndObject();
    std::cout << w.str() << "\n";
  } else {
    std::cout << "vtp serve: relayed " << sfu.forwarded_count() << " datagrams ("
              << medium.datagrams_received() << " in / " << medium.datagrams_sent()
              << " out), " << wall.timers_fired << " timers, " << wall.late_ticks
              << " late ticks (" << wall.coalesced_ticks << " coalesced), "
              << wall.early_fires << " early fires\n";
    PrintStageTable(obs::Snapshot::Capture(medium.sim().metrics(), &medium.sim().tracer()),
                    std::cout);
  }
  if (!DumpObsSnapshot(flags, "serve", medium.sim())) return 1;
  return wall.early_fires == 0 ? 0 : 1;
}

/// One client persona: a TAPS connection to the SFU carrying a spatial
/// sender (90 FPS semantic frames) and a receiver decoding everyone else.
struct ClientPersona {
  std::unique_ptr<transport::taps::Connection> conn;
  std::unique_ptr<vca::SpatialPersonaSender> sender;
  std::unique_ptr<vca::SpatialPersonaReceiver> receiver;
};

ClientPersona MakePersona(net::Medium& medium, transport::taps::Endpoint local,
                          transport::taps::Endpoint remote, std::uint8_t id, double fps,
                          std::uint64_t seed) {
  ClientPersona p;
  p.conn = transport::taps::Preconnection{}
               .WithLocal(local)
               .WithRemote(remote)
               .Initiate(medium);
  p.receiver = std::make_unique<vca::SpatialPersonaReceiver>(
      &medium.sim(), std::map<std::uint8_t, const mesh::TriangleMesh*>{},
      /*reconstruct_stride=*/9, fps);
  p.receiver->set_self_id(id);
  p.conn->set_on_received(
      [rx = p.receiver.get()](std::span<const std::uint8_t> data) { rx->OnDatagram(data); });
  p.sender = std::make_unique<vca::SpatialPersonaSender>(
      &medium.sim(), p.conn->quic(), id, seed * 77 + id, semantic::SemanticCodecConfig{}, fps);
  return p;
}

/// Shared tail of both client modes: start senders once handshakes settle,
/// run to `end` (+ drain), then report and gate on >0 decoded frames.
int FinishClient(const core::Flags& flags, net::Simulator& sim,
                 std::vector<ClientPersona>& personas, net::SimTime end,
                 const std::function<void(net::SimTime)>& run_until,
                 const net::WallClockStats* wall) {
  sim.After(net::Millis(300), [&personas, end] {
    for (ClientPersona& p : personas) p.sender->Start(end);
  });
  run_until(end + net::Millis(500));  // drain in-flight frames past the send window

  std::uint64_t sent = 0, decoded = 0;
  for (const ClientPersona& p : personas) {
    sent += p.sender->frames_sent();
    decoded += p.receiver->total_frames_decoded();
  }

  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("personas");
    w.Int(static_cast<std::int64_t>(personas.size()));
    w.Key("frames_sent");
    w.Int(static_cast<std::int64_t>(sent));
    w.Key("frames_decoded");
    w.Int(static_cast<std::int64_t>(decoded));
    if (wall != nullptr) {
      w.Key("timers_fired");
      w.Int(static_cast<std::int64_t>(wall->timers_fired));
      w.Key("late_ticks");
      w.Int(static_cast<std::int64_t>(wall->late_ticks));
      w.Key("early_fires");
      w.Int(static_cast<std::int64_t>(wall->early_fires));
    }
    w.EndObject();
    std::cout << w.str() << "\n";
  } else {
    std::cout << "vtp client: " << personas.size() << " personas, " << sent
              << " frames sent, " << decoded << " frames decoded end-to-end\n";
    if (wall != nullptr) {
      std::cout << wall->timers_fired << " timers, " << wall->late_ticks << " late ticks ("
                << wall->coalesced_ticks << " coalesced), " << wall->early_fires
                << " early fires\n";
    }
    PrintStageTable(obs::Snapshot::Capture(sim.metrics(), &sim.tracer()), std::cout);
  }
  if (!DumpObsSnapshot(flags, "client", sim)) return 1;
  if (wall != nullptr && wall->early_fires != 0) return 1;
  // The end-to-end delivery gate: persona frames must have round-tripped
  // through the SFU and decoded. (With one persona nothing fans back.)
  return personas.size() < 2 || decoded > 0 ? 0 : 1;
}

int CmdClient(const core::Flags& flags) {
  const int persona_count = static_cast<int>(flags.GetInt("personas", 2));
  const double duration_s = flags.GetDouble("duration", 5);
  const double fps = flags.GetDouble("fps", 90);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const auto port_base = static_cast<std::uint16_t>(flags.GetInt("port-base", 9000));
  const auto id_base = static_cast<std::uint8_t>(flags.GetInt("id-base", 0));
  const std::string medium_kind = flags.Get("medium", core::knobs::kMedium.Get());
  const net::SimTime end = net::Seconds(duration_s);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  if (medium_kind == "socket") {
    const auto [host, port] = ParseHostPort(flags.Get("connect", core::knobs::kConnect.Get()));
    net::SocketMedium medium(seed, "0.0.0.0", net::Ipv4ToNode("127.0.0.1"));
    medium.sim().tracer().Enable(/*max_spans=*/8192);
    const transport::taps::Endpoint remote{net::Ipv4ToNode(host), port};
    std::vector<ClientPersona> personas;
    for (int i = 0; i < persona_count; ++i) {
      personas.push_back(MakePersona(
          medium, {medium.local_node(), static_cast<std::uint16_t>(port_base + i)}, remote,
          static_cast<std::uint8_t>(id_base + i), fps, seed));
    }
    std::cerr << "vtp client: " << persona_count << " personas -> " << host << ":" << port
              << " for " << core::Fmt(duration_s, 1) << " s (socket medium)\n";
    return FinishClient(
        flags, medium.sim(), personas, end,
        [&](net::SimTime until) {
          while (!g_stop && medium.sim().now() < until) medium.Pump(/*max_wait_ms=*/50);
        },
        &medium.wall_stats());
  }

  // sim medium: a self-contained star topology with an in-process SFU —
  // byte-deterministic, no sockets (the CLI smoke tests run this mode).
  net::Simulator sim(seed);
  sim.tracer().Enable(/*max_spans=*/8192);
  net::Network network(&sim);
  const net::GeoPoint here{41.88, -87.63};
  const net::NodeId hub = network.AddNode("hub", here, net::Region::kMiddleUs, true);
  const net::LinkConfig access{.rate_bps = 1e9, .prop_delay = net::Millis(1)};
  const net::NodeId server = network.AddNode("sfu", here, net::Region::kMiddleUs, false);
  network.Connect(server, hub, access);
  std::vector<net::NodeId> clients;
  for (int i = 0; i < persona_count; ++i) {
    clients.push_back(
        network.AddNode("c" + std::to_string(i), here, net::Region::kMiddleUs, false));
    network.Connect(clients.back(), hub, access);
  }
  network.ComputeRoutes();
  const auto port = static_cast<std::uint16_t>(flags.GetInt("port", 4433));
  vca::SfuServer sfu(&network, server, port, vca::TransportKind::kQuicDatagram);

  std::vector<ClientPersona> personas;
  for (int i = 0; i < persona_count; ++i) {
    personas.push_back(MakePersona(
        network, {clients[static_cast<std::size_t>(i)], static_cast<std::uint16_t>(port_base + i)},
        {server, port}, static_cast<std::uint8_t>(id_base + i), fps, seed));
  }
  std::cerr << "vtp client: " << persona_count << " personas, in-process SFU for "
            << core::Fmt(duration_s, 1) << " s (sim medium)\n";
  return FinishClient(flags, sim, personas, end,
                      [&](net::SimTime until) { sim.RunUntil(until); }, nullptr);
}

int CmdRtt(const core::Flags& flags) {
  core::RttProbeSpec spec;
  for (const std::string& metro : flags.GetList("clients")) {
    spec.clients.push_back({metro, metro});
  }
  if (spec.clients.empty()) {
    spec.clients = {{"W", "SanFrancisco"}, {"M", "Dallas"}, {"E", "NewYork"}};
  }
  for (const std::string& app_name : flags.GetList("apps")) {
    const vca::VcaProfile& profile = vca::GetProfile(ParseApp(app_name));
    for (const std::string_view metro : profile.server_metros) {
      spec.servers.push_back({std::string(profile.name), std::string(metro)});
    }
  }
  for (const std::string& metro : flags.GetList("servers")) {
    spec.servers.push_back({metro, metro});
  }
  if (spec.servers.empty()) {
    std::cerr << "vtp rtt: need --apps=... and/or --servers=...\n";
    return 2;
  }
  spec.pings_per_pair = static_cast<int>(flags.GetInt("pings", 10));
  const core::RttMatrix result = core::MeasureRttMatrix(spec);

  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("servers");
    w.BeginArray();
    for (std::size_t s = 0; s < spec.servers.size(); ++s) {
      w.BeginObject();
      w.Key("label");
      w.String(spec.servers[s].label);
      w.Key("metro");
      w.String(spec.servers[s].metro);
      w.Key("region");
      w.String(std::string(net::RegionCode(result.server_regions[s])));
      w.EndObject();
    }
    w.EndArray();
    w.Key("rtt_ms");
    w.BeginArray();
    for (const auto& row : result.rtt_ms) {
      w.BeginArray();
      for (const core::Summary& s : row) w.Number(s.mean);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    std::cout << w.str() << "\n";
    return 0;
  }

  core::TextTable table;
  std::vector<std::string> header = {"client"};
  for (std::size_t s = 0; s < spec.servers.size(); ++s) {
    header.push_back(spec.servers[s].label + "." +
                     std::string(net::RegionCode(result.server_regions[s])));
  }
  table.SetHeader(header);
  for (std::size_t c = 0; c < spec.clients.size(); ++c) {
    std::vector<std::string> row = {spec.clients[c].label};
    for (const core::Summary& s : result.rtt_ms[c]) row.push_back(core::Fmt(s.mean, 1));
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}

int CmdProbe(const core::Flags& flags) {
  core::DisplayLatencyConfig config;
  config.mode = flags.Get("mode", "local") == "remote"
                    ? core::DeliveryMode::kRemotePrerendered
                    : core::DeliveryMode::kLocalReconstruction;
  config.injected_delay = net::Millis(flags.GetDouble("delay-ms", 0));
  const core::DisplayLatencyResult r = core::MeasureDisplayLatency(config);

  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("mode");
    w.String(flags.Get("mode", "local"));
    w.Key("injected_delay_ms");
    w.Number(net::ToMillis(config.injected_delay));
    w.Key("real_world_ms");
    w.Number(r.real_world_ms);
    w.Key("persona_ms");
    w.Number(r.persona_ms);
    w.Key("difference_ms");
    w.Number(r.difference_ms);
    w.EndObject();
    std::cout << w.str() << "\n";
  } else {
    std::cout << "real-world: " << core::Fmt(r.real_world_ms, 1) << " ms, persona: "
              << core::Fmt(r.persona_ms, 1) << " ms, difference: "
              << core::Fmt(r.difference_ms, 1) << " ms\n";
  }
  return 0;
}

// Dumps every registered VTP_* knob: name, type, default, the value it
// currently resolves to, and whether the environment overrides it. The
// catalogue is populated by including core/knobs.h above — each knob handle
// self-registers with core::Config during static initialization.
int CmdKnobs(const core::Flags& flags) {
  const std::vector<const core::Config::KnobInfo*> knobs = core::Config::Instance().List();

  if (flags.GetBool("json", false)) {
    core::JsonWriter w;
    w.BeginObject();
    w.Key("knobs");
    w.BeginArray();
    for (const core::Config::KnobInfo* k : knobs) {
      w.BeginObject();
      w.Key("name");
      w.String(k->name);
      w.Key("type");
      w.String(k->type);
      w.Key("default");
      w.String(k->def);
      w.Key("current");
      w.String(k->current());
      w.Key("overridden");
      w.Bool(k->overridden());
      w.Key("help");
      w.String(k->help);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::cout << w.str() << "\n";
    return 0;
  }

  core::TextTable table;
  table.SetHeader({"knob", "type", "default", "current", "set", "help"});
  for (const core::Config::KnobInfo* k : knobs) {
    table.AddRow({k->name, k->type, k->def, k->current(), k->overridden() ? "env" : "-",
                  k->help});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const core::Flags flags(argc, argv);
  if (flags.GetBool("knobs", false)) return CmdKnobs(flags);
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional().front();
  try {
    if (command == "run") return CmdRun(flags);
    if (command == "serve") return CmdServe(flags);
    if (command == "client") return CmdClient(flags);
    if (command == "rtt") return CmdRtt(flags);
    if (command == "probe") return CmdProbe(flags);
    if (command == "knobs") return CmdKnobs(flags);
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "vtp " << command << ": " << e.what() << "\n";
    return 1;
  }
}
